#include "core/astar.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/actions.h"

namespace abivm {

namespace {

// A node in the LGM plan graph: the post-action state at a given time
// (t = -1 encodes the source; the destination is handled separately).
struct NodeKey {
  TimeStep t;
  StateVec state;

  bool operator==(const NodeKey& other) const {
    return t == other.t && state == other.state;
  }
};

struct NodeKeyHash {
  size_t operator()(const NodeKey& key) const {
    uint64_t h = static_cast<uint64_t>(key.t) * 0x9e3779b97f4a7c15ULL + 1;
    for (Count c : key.state) {
      uint64_t x = h ^ c;
      h = SplitMix64(x);
    }
    return static_cast<size_t>(h);
  }
};

struct NodeInfo {
  double g = 0.0;
  // Back-pointer for plan reconstruction: the predecessor node and the
  // action (with its time) taken on the incoming optimal edge.
  int32_t parent = -1;
  TimeStep action_time = -1;
  bool expanded = false;  // for the re-expansion statistic
  StateVec action;
};

struct FrontierEntry {
  double f;       // g + h
  double g;       // tie-break: prefer larger g (deeper, more informed)
  int32_t node;

  bool operator>(const FrontierEntry& other) const {
    if (f != other.f) return f > other.f;
    if (g != other.g) return g < other.g;
    return node > other.node;
  }
};

class Search {
 public:
  Search(const ProblemInstance& instance, const AStarOptions& options)
      : instance_(instance), options_(options) {
    PrecomputeHeuristicTerms();
  }

  PlanSearchResult Run();

 private:
  // b_i = m_i + max{b : f_i(b) <= C} and f_i(b_i), the paper's per-table
  // batch bound. The floor(R/b_i) * f_i(b_i) term is only a valid lower
  // bound when the per-item cost is non-increasing (see Heuristic below).
  void PrecomputeHeuristicTerms() {
    const size_t n = instance_.n();
    batch_bound_.resize(n);
    batch_bound_cost_.resize(n);
    star_shaped_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const CostFunction& f = instance_.cost_model.function(i);
      star_shaped_[i] = f.CostPerItemNonIncreasing();
      const uint64_t max_batch = f.MaxBatchWithin(instance_.budget);
      if (max_batch == kUnboundedBatch) {
        batch_bound_[i] = kUnboundedBatch;
        batch_bound_cost_[i] = 0.0;
        continue;
      }
      const Count m_i = instance_.arrivals.MaxStepArrival(i);
      batch_bound_[i] = max_batch + m_i;
      batch_bound_cost_[i] =
          batch_bound_[i] == 0
              ? 0.0
              : instance_.cost_model.Cost(i, batch_bound_[i]);
    }
  }

  // h(t, s): admissible per-table lower bound on the remaining cost for
  // the R_i = s[i] + K_i modifications still to be processed.
  //
  // Deviation from the paper (documented in DESIGN.md): the paper's
  // Section 4.1 heuristic is floor(R/b_i) * f_i(b_i) alone. That term is
  // (a) only a lower bound when f_i(k)/k is non-increasing (each batch of
  // size k <= b_i then costs >= (k/b_i) f_i(b_i)) -- for subadditive but
  // non-concave functions like StepCost it can overestimate, making A*
  // return suboptimal plans -- and (b) inconsistent even for linear
  // costs (crossing a multiple of b_i drops it by f_i(b_i) while paying
  // only f_i(1)). We therefore use
  //     max(f_i(R),  [per-item non-increasing] (R/b_i) * f_i(b_i)),
  // where f_i(R) is admissible by subadditivity (any partition of R costs
  // at least f_i(R)) and consistent for the same reason, and the
  // continuous term both dominates the paper's floor term (R/b >=
  // floor(R/b)) and is consistent when f_i(k)/k is non-increasing:
  // processing a <= b_i modifications costs f_i(a) >= (a/b_i) f_i(b_i),
  // exactly the amount the term decreases. A consistent heuristic means
  // nodes never need re-expansion.
  double Heuristic(TimeStep t, const StateVec& state) {
    if (!options_.use_heuristic) return 0.0;
    ++result_.heuristic_evals;
    const TimeStep horizon = instance_.horizon();
    double h = 0.0;
    for (size_t i = 0; i < state.size(); ++i) {
      const Count remaining =
          state[i] + instance_.arrivals.RangeSum(t + 1, horizon, i);
      if (remaining == 0) continue;
      double term = options_.paper_exact_heuristic
                        ? 0.0
                        : instance_.cost_model.Cost(i, remaining);
      if ((star_shaped_[i] || options_.paper_exact_heuristic) &&
          batch_bound_[i] != kUnboundedBatch && batch_bound_[i] > 0) {
        const double batches =
            options_.paper_exact_heuristic
                ? static_cast<double>(remaining / batch_bound_[i])
                : static_cast<double>(remaining) /
                      static_cast<double>(batch_bound_[i]);
        term = std::max(term, batches * batch_bound_cost_[i]);
      }
      h += term;
    }
    return h;
  }

  // First time t' in (t, horizon] at which the pre-action state
  // state + arrivals(t+1 .. t') becomes full, or horizon + 1 if never.
  TimeStep FirstFullTime(TimeStep t, const StateVec& state) const {
    const TimeStep horizon = instance_.horizon();
    auto full_at = [&](TimeStep tp) {
      return instance_.cost_model.IsFull(
          AddVec(state, instance_.arrivals.RangeSumVec(t + 1, tp)),
          instance_.budget);
    };
    if (!full_at(horizon)) return horizon + 1;
    TimeStep lo = t + 1, hi = horizon;
    // Invariant: full_at(hi); find smallest full time.
    while (lo < hi) {
      const TimeStep mid = lo + (hi - lo) / 2;
      if (full_at(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  int32_t InternNode(NodeKey key) {
    auto [it, inserted] =
        index_.try_emplace(std::move(key), static_cast<int32_t>(nodes_.size()));
    if (inserted) {
      nodes_.emplace_back();
      nodes_.back().g = kInfinity;
      // A node is "generated" when it first enters the search graph;
      // relaxation attempts into existing nodes are counted separately
      // (result_.relaxations) so the two statistics stay honest.
      ++result_.nodes_generated;
    }
    return it->second;
  }

  void Relax(int32_t from, int32_t to, TimeStep action_time,
             StateVec action, double weight, double h_to) {
    NodeInfo& info = nodes_[static_cast<size_t>(to)];
    const double candidate = nodes_[static_cast<size_t>(from)].g + weight;
    ++result_.relaxations;
    if (candidate < info.g) {
      ++result_.edges_improved;
      info.g = candidate;
      info.parent = from;
      info.action_time = action_time;
      info.action = std::move(action);
      frontier_.push({candidate + h_to, candidate, to});
      if (frontier_.size() > result_.frontier_peak) {
        result_.frontier_peak = frontier_.size();
      }
    }
  }

  // Mirrors the final PlanSearchResult statistics into the caller's
  // registry (AStarOptions::metrics), if one was supplied.
  void PublishMetrics() {
    obs::MetricRegistry* metrics = options_.metrics;
    if (metrics == nullptr) return;
    metrics->counter("astar.searches").Add(1);
    metrics->counter("astar.nodes_expanded").Add(result_.nodes_expanded);
    metrics->counter("astar.nodes_generated").Add(result_.nodes_generated);
    metrics->counter("astar.relaxations").Add(result_.relaxations);
    metrics->counter("astar.edges_improved").Add(result_.edges_improved);
    metrics->counter("astar.reexpansions").Add(result_.reexpansions);
    metrics->counter("astar.heuristic_evals").Add(result_.heuristic_evals);
    metrics->counter("astar.frontier_peak").RaiseTo(result_.frontier_peak);
    metrics->timer("astar.search_ms").Record(result_.wall_ms);
  }

  static constexpr double kInfinity = 1e300;

  const ProblemInstance& instance_;
  AStarOptions options_;
  std::vector<Count> batch_bound_;
  std::vector<double> batch_bound_cost_;
  std::vector<bool> star_shaped_;

  std::unordered_map<NodeKey, int32_t, NodeKeyHash> index_;
  std::vector<NodeInfo> nodes_;
  std::vector<NodeKey> keys_;  // parallel to nodes_ for expansion
  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      std::greater<FrontierEntry>>
      frontier_;
  PlanSearchResult result_{MaintenancePlan(1, 0)};
};

PlanSearchResult Search::Run() {
  const Stopwatch watch;
  const TimeStep horizon = instance_.horizon();
  const size_t n = instance_.n();
  ABIVM_CHECK_LE(n, kMaxEnumerationTables);

  result_ = PlanSearchResult{MaintenancePlan(n, horizon)};

  // Node interning keeps keys alongside infos.
  auto intern = [&](NodeKey key) {
    const int32_t id = InternNode(key);
    if (static_cast<size_t>(id) == keys_.size()) {
      keys_.push_back(std::move(key));
    }
    return id;
  };

  const int32_t source = intern(NodeKey{-1, ZeroVec(n)});
  // Destination: refresh done at T with empty state.
  const int32_t destination = intern(NodeKey{horizon, ZeroVec(n)});

  nodes_[static_cast<size_t>(source)].g = 0.0;
  frontier_.push(
      {Heuristic(-1, ZeroVec(n)), 0.0, source});

  while (!frontier_.empty()) {
    const FrontierEntry top = frontier_.top();
    frontier_.pop();
    NodeInfo& info = nodes_[static_cast<size_t>(top.node)];
    if (top.g > info.g) continue;  // stale entry
    // No closed set: the heuristic is admissible but not necessarily
    // consistent, so a node may be re-expanded after its g improves.
    ++result_.nodes_expanded;
    if (info.expanded) ++result_.reexpansions;
    info.expanded = true;

    if (top.node == destination) {
      // Reconstruct the plan by walking back-pointers.
      result_.cost = info.g;
      int32_t cursor = destination;
      while (cursor != source) {
        const NodeInfo& step = nodes_[static_cast<size_t>(cursor)];
        if (!IsZeroVec(step.action)) {
          result_.plan.SetAction(step.action_time, step.action);
        }
        cursor = step.parent;
      }
      result_.wall_ms = watch.ElapsedMs();
      PublishMetrics();
      return result_;
    }

    const NodeKey key = keys_[static_cast<size_t>(top.node)];  // copy:
    // expansion below may grow keys_ and invalidate references.
    const TimeStep t2 = FirstFullTime(key.t, key.state);
    if (t2 >= horizon) {
      // Either the state never becomes full before T, or it first fills
      // exactly at T: in both cases the only remaining LGM action is the
      // full refresh at T.
      StateVec pre_at_horizon =
          AddVec(key.state, instance_.arrivals.RangeSumVec(key.t + 1, horizon));
      const double weight = instance_.cost_model.TotalCost(pre_at_horizon);
      Relax(top.node, destination, horizon, std::move(pre_at_horizon), weight,
            /*h_to=*/0.0);
      continue;
    }

    const StateVec pre_state =
        AddVec(key.state, instance_.arrivals.RangeSumVec(key.t + 1, t2));
    for (StateVec& action : EnumerateMinimalGreedyActions(
             instance_.cost_model, instance_.budget, pre_state)) {
      StateVec post = SubVec(pre_state, action);
      const double weight = instance_.cost_model.TotalCost(action);
      const double h_to = Heuristic(t2, post);
      const int32_t successor = intern(NodeKey{t2, std::move(post)});
      Relax(top.node, successor, t2, std::move(action), weight, h_to);
    }
  }
  ABIVM_CHECK_MSG(false, "A* frontier exhausted without reaching refresh; "
                         "the LGM graph always contains a path");
  return result_;
}

}  // namespace

PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options) {
  Search search(instance, options);
  return search.Run();
}

}  // namespace abivm
