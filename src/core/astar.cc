#include "core/astar.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <vector>

#include "common/float_compare.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/actions.h"

namespace abivm {

namespace {

// Per-node search bookkeeping. A node of the LGM plan graph is a
// (time, post-action state) pair; the state vectors themselves live in a
// flat arena (`Search::node_state_`, n counts per node) rather than in
// per-node heap blocks, and the incoming best action lives in a parallel
// arena slot, so growing the graph never allocates per node.
struct NodeInfo {
  double g = 0.0;
  // Cached heuristic value h(t, state): a pure function of the node, so
  // it is computed once on the node's first improving relaxation and
  // reused by every later queue push (< 0 means not yet computed).
  double h = -1.0;
  // Back-pointer for plan reconstruction: the predecessor node; the
  // action taken on the incoming optimal edge sits in the action arena.
  int32_t parent = -1;
  TimeStep action_time = -1;
  bool expanded = false;  // doubles as the closed-set membership bit
};

struct FrontierEntry {
  double f;       // g + h
  double g;       // tie-break: prefer larger g (deeper, more informed)
  int32_t node;

  bool operator>(const FrontierEntry& other) const {
    if (f != other.f) return f > other.f;
    if (g != other.g) return g < other.g;
    return node > other.node;
  }
};

class Search {
 public:
  Search(const ProblemInstance& instance, const AStarOptions& options)
      : instance_(instance), options_(options), n_(instance.n()) {
    PrecomputeHeuristicTerms();
  }

  PlanSearchResult Run();

 private:
  // The configured heuristic is consistent for h = 0 (Dijkstra) and for
  // the safe default bound (both terms are consistent and max preserves
  // consistency; see DESIGN.md "Why the closed set is sound"). The
  // literal paper heuristic is inconsistent even for linear costs, so it
  // must keep the re-open loop.
  bool Consistent() const { return !options_.paper_exact_heuristic; }

  // b_i = m_i + max{b : f_i(b) <= C} and f_i(b_i), the paper's per-table
  // batch bound. The floor(R/b_i) * f_i(b_i) term is only a valid lower
  // bound when the per-item cost is non-increasing (see Heuristic below).
  // Also caches raw cost-function pointers and the per-table arrival
  // suffix totals suffix_[(t+1)*n + i] = sum of d_u[i] over u in
  // (t, horizon], so a heuristic evaluation indexes a precomputed row
  // instead of issuing n range-sum queries.
  void PrecomputeHeuristicTerms() {
    const TimeStep horizon = instance_.horizon();
    batch_bound_.resize(n_);
    batch_bound_cost_.resize(n_);
    star_shaped_.resize(n_);
    fns_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      const CostFunction& f = instance_.cost_model.function(i);
      fns_[i] = &f;
      star_shaped_[i] = f.CostPerItemNonIncreasing();
      const uint64_t max_batch = f.MaxBatchWithin(instance_.budget);
      if (max_batch == kUnboundedBatch) {
        batch_bound_[i] = kUnboundedBatch;
        batch_bound_cost_[i] = 0.0;
        continue;
      }
      const Count m_i = instance_.arrivals.MaxStepArrival(i);
      batch_bound_[i] = max_batch + m_i;
      batch_bound_cost_[i] =
          batch_bound_[i] == 0
              ? 0.0
              : instance_.cost_model.Cost(i, batch_bound_[i]);
    }

    // Suffix totals for every heuristic anchor time t in [-1, horizon]
    // (row index t + 1): total arrivals minus the prefix through t.
    suffix_.resize((static_cast<size_t>(horizon) + 2) * n_);
    const StateVec& total = instance_.arrivals.PrefixThrough(horizon);
    for (TimeStep t = -1; t <= horizon; ++t) {
      const StateVec& prefix = instance_.arrivals.PrefixThrough(t);
      Count* row = suffix_.data() + static_cast<size_t>(t + 1) * n_;
      for (size_t i = 0; i < n_; ++i) row[i] = total[i] - prefix[i];
    }
  }

  // h(t, s): admissible per-table lower bound on the remaining cost for
  // the R_i = s[i] + K_i modifications still to be processed.
  //
  // Deviation from the paper (documented in DESIGN.md): the paper's
  // Section 4.1 heuristic is floor(R/b_i) * f_i(b_i) alone. That term is
  // (a) only a lower bound when f_i(k)/k is non-increasing (each batch of
  // size k <= b_i then costs >= (k/b_i) f_i(b_i)) -- for subadditive but
  // non-concave functions like StepCost it can overestimate, making A*
  // return suboptimal plans -- and (b) inconsistent even for linear
  // costs (crossing a multiple of b_i drops it by f_i(b_i) while paying
  // only f_i(1)). We therefore use
  //     max(f_i(R),  [per-item non-increasing] (R/b_i) * f_i(b_i)),
  // where f_i(R) is admissible by subadditivity (any partition of R costs
  // at least f_i(R)) and consistent for the same reason, and the
  // continuous term both dominates the paper's floor term (R/b >=
  // floor(R/b)) and is consistent when f_i(k)/k is non-increasing:
  // processing a <= b_i modifications costs f_i(a) >= (a/b_i) f_i(b_i),
  // exactly the amount the term decreases. A consistent heuristic means
  // nodes never need re-expansion.
  double Heuristic(TimeStep t, const Count* state) {
    if (!options_.use_heuristic) return 0.0;
    ++result_.heuristic_evals;
    const Count* suffix_row =
        suffix_.data() + static_cast<size_t>(t + 1) * n_;
    double h = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      const Count remaining = state[i] + suffix_row[i];
      if (remaining == 0) continue;
      double term = options_.paper_exact_heuristic
                        ? 0.0
                        : fns_[i]->Cost(remaining);
      if ((star_shaped_[i] || options_.paper_exact_heuristic) &&
          batch_bound_[i] != kUnboundedBatch && batch_bound_[i] > 0) {
        const double batches =
            options_.paper_exact_heuristic
                ? static_cast<double>(remaining / batch_bound_[i])
                : static_cast<double>(remaining) /
                      static_cast<double>(batch_bound_[i]);
        term = std::max(term, batches * batch_bound_cost_[i]);
      }
      h += term;
    }
    return h;
  }

  // IsFull on the pre-action state state + arrivals(t+1 .. tp) without
  // materializing a sum vector: differences the two cumulative rows
  // component-wise and early-exits once the partial cost sum already
  // exceeds the budget (valid because per-table costs are non-negative
  // and CostExceedsBudget is monotone in its cost argument).
  bool IsFullAt(const Count* state, TimeStep t, TimeStep tp) const {
    const StateVec& hi = instance_.arrivals.PrefixThrough(tp);
    const StateVec& lo = instance_.arrivals.PrefixThrough(t);
    double total = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      const Count pre = state[i] + (hi[i] - lo[i]);
      total += fns_[i]->Cost(pre);
      if (CostExceedsBudget(total, instance_.budget)) return true;
    }
    return false;
  }

  // First time t' in (t, horizon] at which the pre-action state
  // state + arrivals(t+1 .. t') becomes full, or horizon + 1 if never.
  TimeStep FirstFullTime(TimeStep t, const Count* state) const {
    const TimeStep horizon = instance_.horizon();
    if (!IsFullAt(state, t, horizon)) return horizon + 1;
    TimeStep lo = t + 1, hi = horizon;
    // Invariant: IsFullAt(hi); find smallest full time.
    while (lo < hi) {
      const TimeStep mid = lo + (hi - lo) / 2;
      if (IsFullAt(state, t, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // out = state + arrivals(t+1 .. t2), via the two cumulative rows.
  void PreStateInto(const Count* state, TimeStep t, TimeStep t2,
                    StateVec& out) const {
    const StateVec& hi = instance_.arrivals.PrefixThrough(t2);
    const StateVec& lo = instance_.arrivals.PrefixThrough(t);
    out.resize(n_);
    for (size_t i = 0; i < n_; ++i) out[i] = state[i] + (hi[i] - lo[i]);
  }

  size_t HashOf(TimeStep t, const Count* state) const {
    uint64_t h = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL + 1;
    for (size_t i = 0; i < n_; ++i) {
      uint64_t x = h ^ state[i];
      h = SplitMix64(x);
    }
    return static_cast<size_t>(h);
  }

  const Count* StateOf(int32_t id) const {
    return node_state_.data() + static_cast<size_t>(id) * n_;
  }

  // Doubles the open-addressing table and reinserts every node using its
  // stored hash (no state re-hashing).
  void Rehash() {
    const size_t new_size = buckets_.empty() ? 1024 : buckets_.size() * 2;
    buckets_.assign(new_size, -1);
    bucket_mask_ = new_size - 1;
    for (int32_t id = 0; id < static_cast<int32_t>(nodes_.size()); ++id) {
      size_t b = node_hash_[static_cast<size_t>(id)] & bucket_mask_;
      while (buckets_[b] != -1) b = (b + 1) & bucket_mask_;
      buckets_[b] = id;
    }
  }

  // Interns the node (t, state): linear-probing lookup against the flat
  // arenas; on a miss the node's state is appended to the state arena and
  // an action slot is reserved, so interning performs no per-node heap
  // allocation (arena growth is amortized).
  int32_t InternNode(TimeStep t, const Count* state) {
    if ((nodes_.size() + 1) * 4 > buckets_.size() * 3) Rehash();
    const size_t hash = HashOf(t, state);
    size_t b = hash & bucket_mask_;
    while (buckets_[b] != -1) {
      const int32_t id = buckets_[b];
      if (node_t_[static_cast<size_t>(id)] == t &&
          std::equal(state, state + n_, StateOf(id))) {
        return id;
      }
      b = (b + 1) & bucket_mask_;
    }
    const int32_t id = static_cast<int32_t>(nodes_.size());
    buckets_[b] = id;
    node_t_.push_back(t);
    node_hash_.push_back(hash);
    node_state_.insert(node_state_.end(), state, state + n_);
    node_action_.resize(node_action_.size() + n_);
    nodes_.emplace_back();
    nodes_.back().g = kInfinity;
    // A node is "generated" when it first enters the search graph;
    // relaxation attempts into existing nodes are counted separately
    // (result_.relaxations) so the two statistics stay honest.
    ++result_.nodes_generated;
    return id;
  }

  // Attempts to improve `to` via an edge from `from` (whose settled cost
  // is `g_from`) paying `weight` for `action`. The heuristic is evaluated
  // lazily -- only when the relaxation actually improves the node and the
  // node's h was never computed -- so non-improving edges (the majority)
  // cost no heuristic work.
  void Relax(double g_from, int32_t from, int32_t to, TimeStep action_time,
             const Count* action, double weight) {
    NodeInfo& info = nodes_[static_cast<size_t>(to)];
    const double candidate = g_from + weight;
    ++result_.relaxations;
    if (candidate >= info.g) return;
    // Closed set: a settled node is final. The consistent heuristic
    // limits any later "improvement" to floating-point summation noise
    // (different addition orders along equal-cost paths, a few ulps);
    // accepting it would desynchronize the node's recorded g from the
    // costs already propagated to its successors, so it is ignored.
    if (closed_set_active_ && info.expanded) return;
    if (info.h < 0.0) info.h = Heuristic(node_t_[static_cast<size_t>(to)],
                                         StateOf(to));
    ++result_.edges_improved;
    info.g = candidate;
    info.parent = from;
    info.action_time = action_time;
    std::copy(action, action + n_,
              node_action_.begin() + static_cast<size_t>(to) * n_);
    frontier_.push({candidate + info.h, candidate, to});
    if (frontier_.size() > result_.frontier_peak) {
      result_.frontier_peak = frontier_.size();
    }
  }

  // Mirrors the final PlanSearchResult statistics into the caller's
  // registry (AStarOptions::metrics), if one was supplied.
  void PublishMetrics() {
    obs::MetricRegistry* metrics = options_.metrics;
    if (metrics == nullptr) return;
    metrics->counter("astar.searches").Add(1);
    metrics->counter("astar.nodes_expanded").Add(result_.nodes_expanded);
    metrics->counter("astar.nodes_generated").Add(result_.nodes_generated);
    metrics->counter("astar.relaxations").Add(result_.relaxations);
    metrics->counter("astar.edges_improved").Add(result_.edges_improved);
    metrics->counter("astar.reexpansions").Add(result_.reexpansions);
    metrics->counter("astar.heuristic_evals").Add(result_.heuristic_evals);
    metrics->counter("astar.frontier_peak").RaiseTo(result_.frontier_peak);
    metrics->timer("astar.search_ms").Record(result_.wall_ms);
  }

  static constexpr double kInfinity = 1e300;

  const ProblemInstance& instance_;
  AStarOptions options_;
  const size_t n_;
  bool closed_set_active_ = false;
  std::vector<Count> batch_bound_;
  std::vector<double> batch_bound_cost_;
  std::vector<bool> star_shaped_;
  std::vector<const CostFunction*> fns_;
  std::vector<Count> suffix_;  // (horizon + 2) rows of n suffix totals

  // Node storage: parallel flat arrays indexed by node id. States and
  // incoming best actions are n_-count arena slices.
  std::vector<NodeInfo> nodes_;
  std::vector<TimeStep> node_t_;
  std::vector<size_t> node_hash_;
  std::vector<Count> node_state_;
  std::vector<Count> node_action_;
  // Open-addressing intern table over node ids (-1 = empty slot),
  // power-of-two sized, linear probing, load factor <= 0.75.
  std::vector<int32_t> buckets_;
  size_t bucket_mask_ = 0;

  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      std::greater<FrontierEntry>>
      frontier_;

  // Scratch buffers owned by the search so the per-expansion work
  // (key copy, pre-state accumulation, successor states, enumerated
  // actions) reuses storage instead of allocating.
  StateVec expand_state_;
  StateVec pre_state_;
  StateVec post_state_;
  std::vector<StateVec> actions_;
  std::vector<double> action_costs_;

  PlanSearchResult result_{MaintenancePlan(1, 0)};
};

PlanSearchResult Search::Run() {
  const Stopwatch watch;
  const TimeStep horizon = instance_.horizon();
  ABIVM_CHECK_LE(n_, kMaxEnumerationTables);

  result_ = PlanSearchResult{MaintenancePlan(n_, horizon)};
  closed_set_active_ = options_.use_closed_set && Consistent();
  result_.used_closed_set = closed_set_active_;

  const StateVec zero = ZeroVec(n_);
  const int32_t source = InternNode(-1, zero.data());
  // Destination: refresh done at T with empty state.
  const int32_t destination = InternNode(horizon, zero.data());

  nodes_[static_cast<size_t>(source)].g = 0.0;
  nodes_[static_cast<size_t>(source)].h = Heuristic(-1, zero.data());
  frontier_.push({nodes_[static_cast<size_t>(source)].h, 0.0, source});

  while (!frontier_.empty()) {
    const FrontierEntry top = frontier_.top();
    frontier_.pop();
    NodeInfo& info = nodes_[static_cast<size_t>(top.node)];
    if (top.g > info.g) continue;  // stale entry
    if (info.expanded) {
      // Re-expansion: only reachable with the closed set off (the paper
      // heuristic's genuine inconsistency, or ulp-level noise under the
      // default heuristic). Under the closed set, Relax never re-queues a
      // settled node and stale entries were filtered above, so reaching
      // this line would be a soundness bug.
      ABIVM_CHECK_MSG(!closed_set_active_,
                      "closed-set A* popped a settled node");
      ++result_.reexpansions;
    }
    ++result_.nodes_expanded;
    info.expanded = true;

    if (top.node == destination) {
      // Reconstruct the plan by walking back-pointers.
      result_.cost = info.g;
      int32_t cursor = destination;
      while (cursor != source) {
        const NodeInfo& step = nodes_[static_cast<size_t>(cursor)];
        const Count* action =
            node_action_.data() + static_cast<size_t>(cursor) * n_;
        if (!std::all_of(action, action + n_,
                         [](Count c) { return c == 0; })) {
          result_.plan.SetAction(step.action_time,
                                 StateVec(action, action + n_));
        }
        cursor = step.parent;
      }
      result_.wall_ms = watch.ElapsedMs();
      PublishMetrics();
      return result_;
    }

    // Copy the node's time and state into scratch: interning successors
    // below grows the arenas and would invalidate slice pointers.
    const TimeStep t = node_t_[static_cast<size_t>(top.node)];
    expand_state_.assign(StateOf(top.node), StateOf(top.node) + n_);
    const double g_settled = info.g;  // info dangles once nodes_ grows

    const TimeStep t2 = FirstFullTime(t, expand_state_.data());
    if (t2 >= horizon) {
      // Either the state never becomes full before T, or it first fills
      // exactly at T: in both cases the only remaining LGM action is the
      // full refresh at T.
      PreStateInto(expand_state_.data(), t, horizon, pre_state_);
      const double weight = instance_.cost_model.TotalCost(pre_state_);
      Relax(g_settled, top.node, destination, horizon, pre_state_.data(),
            weight);
      continue;
    }

    PreStateInto(expand_state_.data(), t, t2, pre_state_);
    const size_t action_count = EnumerateMinimalGreedyActionsInto(
        instance_.cost_model, instance_.budget, pre_state_, actions_,
        &action_costs_);
    for (size_t a = 0; a < action_count; ++a) {
      const StateVec& action = actions_[a];
      SubVecInto(pre_state_, action, post_state_);
      const int32_t successor = InternNode(t2, post_state_.data());
      Relax(g_settled, top.node, successor, t2, action.data(),
            action_costs_[a]);
    }
  }
  ABIVM_CHECK_MSG(false, "A* frontier exhausted without reaching refresh; "
                         "the LGM graph always contains a path");
  return result_;
}

}  // namespace

PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options) {
  Search search(instance, options);
  return search.Run();
}

}  // namespace abivm
