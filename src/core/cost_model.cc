#include "core/cost_model.h"

#include "common/float_compare.h"

namespace abivm {

CostModel::CostModel(std::vector<CostFunctionPtr> functions)
    : functions_(std::move(functions)) {
  ABIVM_CHECK_MSG(!functions_.empty(), "CostModel needs >= 1 function");
  for (const auto& f : functions_) ABIVM_CHECK(f != nullptr);
}

double CostModel::Cost(size_t i, Count k) const {
  ABIVM_DCHECK(i < functions_.size());
  return functions_[i]->Cost(k);
}

double CostModel::TotalCost(const StateVec& v) const {
  ABIVM_CHECK_EQ(v.size(), functions_.size());
  double total = 0.0;
  for (size_t i = 0; i < v.size(); ++i) total += functions_[i]->Cost(v[i]);
  return total;
}

bool CostModel::IsFull(const StateVec& state, double budget) const {
  // Epsilon-tolerant so this test and EnumerateMinimalGreedyActions'
  // residue arithmetic (total - flushed) can never disagree at the
  // boundary; see common/float_compare.h.
  return CostExceedsBudget(TotalCost(state), budget);
}

const CostFunction& CostModel::function(size_t i) const {
  ABIVM_CHECK_LT(i, functions_.size());
  return *functions_[i];
}

}  // namespace abivm
