// Core vocabulary types for the maintenance-scheduling problem
// (Section 2 of the paper): time steps, state vectors, actions.

#ifndef ABIVM_CORE_TYPES_H_
#define ABIVM_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace abivm {

/// Discrete time step in [0, T]. Signed so the A* source node can sit at -1.
using TimeStep = int64_t;

/// Number of batched modifications (per delta table).
using Count = uint64_t;

/// An n-vector over delta tables: arrivals d_t, states s_t, actions p_t.
using StateVec = std::vector<Count>;

/// Returns a zero vector of dimension n.
inline StateVec ZeroVec(size_t n) { return StateVec(n, 0); }

inline bool IsZeroVec(const StateVec& v) {
  for (Count c : v) {
    if (c != 0) return false;
  }
  return true;
}

/// a + b, component-wise.
inline StateVec AddVec(const StateVec& a, const StateVec& b) {
  ABIVM_DCHECK(a.size() == b.size());
  StateVec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

/// out = a + b, component-wise, reusing out's storage (no allocation once
/// out has capacity >= a.size()). `out` may alias `a` or `b`.
inline void AddVecInto(const StateVec& a, const StateVec& b, StateVec& out) {
  ABIVM_DCHECK(a.size() == b.size());
  out.resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

/// out = a - b, component-wise, reusing out's storage; checks b <= a.
/// `out` may alias `a` or `b`.
inline void SubVecInto(const StateVec& a, const StateVec& b, StateVec& out) {
  ABIVM_DCHECK(a.size() == b.size());
  out.resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ABIVM_CHECK_LE(b[i], a[i]);
    out[i] = a[i] - b[i];
  }
}

/// a - b, component-wise; checks b <= a.
inline StateVec SubVec(const StateVec& a, const StateVec& b) {
  ABIVM_DCHECK(a.size() == b.size());
  StateVec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ABIVM_CHECK_LE(b[i], a[i]);
    out[i] = a[i] - b[i];
  }
  return out;
}

/// True iff b <= a component-wise (b is a feasible action in state a).
inline bool FitsWithin(const StateVec& b, const StateVec& a) {
  ABIVM_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (b[i] > a[i]) return false;
  }
  return true;
}

/// "(3, 0, 12)" -- for error messages and traces.
std::string VecToString(const StateVec& v);

}  // namespace abivm

#endif  // ABIVM_CORE_TYPES_H_
