// The plan transformations behind the paper's structural results:
//   * MakeLazyPlan  (Lemma 1) -- any valid plan becomes a lazy plan of no
//     greater cost, so the best lazy plan is globally optimal.
//   * MakeLgmPlan   (Lemma 2 / Theorem 1) -- any valid plan becomes an LGM
//     plan; its cost is provably within 2x of the input plan's.

#ifndef ABIVM_CORE_TRANSFORMS_H_
#define ABIVM_CORE_TRANSFORMS_H_

#include "core/plan.h"

namespace abivm {

/// MAKELAZYPLAN(P): defers every action of `plan` until the response-time
/// constraint forces one (or until T), merging deferred actions. The result
/// is valid, lazy, and costs no more than `plan` (by subadditivity).
/// Requires `plan` to be valid for `instance`.
MaintenancePlan MakeLazyPlan(const ProblemInstance& instance,
                             const MaintenancePlan& plan);

/// MAKELGMPLAN(P): builds a valid LGM plan from any valid plan, flushing
/// delta table i at a forced step only when the LGM state exceeds P's
/// post-action state, then minimizing. Cost is at most 2x f(P) (Theorem 1),
/// and for linear cost functions the per-table action counts do not
/// increase (Theorem 2).
MaintenancePlan MakeLgmPlan(const ProblemInstance& instance,
                            const MaintenancePlan& plan);

}  // namespace abivm

#endif  // ABIVM_CORE_TRANSFORMS_H_
