#include "storage/value.h"

#include <cstring>
#include <sstream>

namespace abivm {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt64: {
      uint64_t x = static_cast<uint64_t>(std::get<int64_t>(data_)) + 1;
      return SplitMix64(x);
    }
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      // Normalize -0.0 to 0.0 so equal doubles hash equally.
      if (d == 0.0) bits = 0;
      uint64_t x = bits ^ 0x9ae16a3b2f90404fULL;
      return SplitMix64(x);
    }
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(data_);
      uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream oss;
  switch (type()) {
    case ValueType::kInt64:
      oss << std::get<int64_t>(data_);
      break;
    case ValueType::kDouble:
      oss << std::get<double>(data_);
      break;
    case ValueType::kString:
      oss << '"' << std::get<std::string>(data_) << '"';
      break;
  }
  return oss.str();
}

std::string RowToString(const Row& row) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << row[i].ToString();
  }
  oss << "]";
  return oss.str();
}

}  // namespace abivm
