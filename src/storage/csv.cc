#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace abivm {

namespace {

std::string FormatCell(const Value& value) {
  switch (value.type()) {
    case ValueType::kInt64:
      return std::to_string(value.AsInt64());
    case ValueType::kDouble: {
      std::ostringstream oss;
      oss.precision(17);  // round-trippable doubles
      oss << value.AsDouble();
      return oss.str();
    }
    case ValueType::kString:
      return CsvEscape(value.AsString());
  }
  return "";
}

// Splits one logical CSV record (handles quoted fields; `is` is consumed
// across physical lines when a quoted field contains newlines). Returns
// false at end of stream with no data.
bool ReadRecord(std::istream& is, std::vector<std::string>* fields,
                bool* malformed) {
  fields->clear();
  *malformed = false;
  std::string field;
  bool in_quotes = false;
  // A closing quote ended the current field: only a separator (or end of
  // record) may legally follow.
  bool quote_closed = false;
  bool any = false;
  int c;
  while ((c = is.get()) != EOF) {
    any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          field.push_back('"');
          is.get();
        } else {
          in_quotes = false;
          quote_closed = true;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      if (!field.empty() || quote_closed) {
        *malformed = true;  // quote inside or right after a field
        return true;
      }
      in_quotes = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
      quote_closed = false;
    } else if (ch == '\n') {
      break;
    } else if (ch != '\r') {
      if (quote_closed) {
        *malformed = true;  // trailing characters after a closing quote
        return true;
      }
      field.push_back(ch);
    }
  }
  if (!any) return false;
  if (in_quotes) {
    *malformed = true;
    return true;
  }
  fields->push_back(std::move(field));
  return true;
}

Result<Value> ParseCell(const std::string& text, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      if (text.empty()) {
        return Status::InvalidArgument("empty int64 cell");
      }
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end != text.c_str() + text.size()) {
        return Status::InvalidArgument("bad int64 cell: " + text);
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      if (text.empty()) {
        return Status::InvalidArgument("empty double cell");
      }
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end != text.c_str() + text.size()) {
        return Status::InvalidArgument("bad double cell: " + text);
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
  }
  return Status::InvalidArgument("unknown cell type");
}

}  // namespace

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void WriteTableCsv(const Table& table, Version version, std::ostream& os) {
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) os << ',';
    os << CsvEscape(schema.column(c).name);
  }
  os << '\n';
  table.ScanAt(version, [&](RowId, const Row& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << FormatCell(row[c]);
    }
    os << '\n';
  });
}

Result<size_t> LoadTableCsv(Database* db, Table* table, std::istream& is) {
  ABIVM_CHECK(db != nullptr);
  ABIVM_CHECK(table != nullptr);
  const Schema& schema = table->schema();

  std::vector<std::string> fields;
  bool malformed = false;
  if (!ReadRecord(is, &fields, &malformed) || malformed) {
    return Status::InvalidArgument("missing or malformed CSV header");
  }
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument("CSV header arity mismatch");
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    if (fields[c] != schema.column(c).name) {
      return Status::InvalidArgument("CSV header column '" + fields[c] +
                                     "' does not match schema column '" +
                                     schema.column(c).name + "'");
    }
  }

  size_t rows = 0;
  size_t line = 1;
  while (ReadRecord(is, &fields, &malformed)) {
    ++line;
    if (malformed) {
      return Status::InvalidArgument("malformed CSV record at line " +
                                     std::to_string(line));
    }
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument("arity mismatch at line " +
                                     std::to_string(line));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      Result<Value> cell = ParseCell(fields[c], schema.column(c).type);
      if (!cell.ok()) {
        return Status::InvalidArgument(cell.status().message() +
                                       " at line " + std::to_string(line));
      }
      row.push_back(std::move(cell.value()));
    }
    db->BulkLoad(*table, std::move(row));
    ++rows;
  }
  return rows;
}

}  // namespace abivm
