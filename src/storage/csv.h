// CSV import/export for tables: bulk-load datasets from files and dump
// table snapshots or query results for external analysis.
//
// Dialect: comma-separated, '\n' rows, RFC-4180-style quoting (fields
// containing commas, quotes or newlines are wrapped in double quotes;
// embedded quotes doubled). The first row is a header and must match the
// schema's column names on load.

#ifndef ABIVM_STORAGE_CSV_H_
#define ABIVM_STORAGE_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace abivm {

/// Writes the rows of `table` visible at `version` (header included).
void WriteTableCsv(const Table& table, Version version, std::ostream& os);

/// Bulk-loads CSV rows into `table` at version 0 (no delta-log entries;
/// use before creating views, like GenerateTpcDatabase). Returns the
/// number of rows loaded, or InvalidArgument on malformed input / header
/// mismatch / cell type mismatch.
Result<size_t> LoadTableCsv(Database* db, Table* table, std::istream& is);

/// Escapes one CSV field (exposed for tests).
std::string CsvEscape(const std::string& field);

}  // namespace abivm

#endif  // ABIVM_STORAGE_CSV_H_
