// Schema: ordered, typed, named columns of a table.

#ifndef ABIVM_STORAGE_SCHEMA_H_
#define ABIVM_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace abivm {

struct Column {
  std::string name;
  ValueType type;
};

/// Immutable column layout. Column lookup by name is linear (tables here
/// have at most ~16 columns).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const;

  /// Index of the named column; CHECK-fails if absent (schemas are static
  /// program data, a miss is a programming error).
  size_t ColumnIndex(const std::string& name) const;

  /// True iff the row has the right arity and cell types.
  bool RowMatches(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace abivm

#endif  // ABIVM_STORAGE_SCHEMA_H_
