// Database: the catalog of tables plus the global modification clock.
//
// All base-table modifications flow through ApplyInsert / ApplyDelete /
// ApplyUpdate, which (a) apply the change to the table immediately -- the
// paper's model: "new modifications are applied immediately to the base
// tables upon arrival" -- and (b) append a Modification record to the
// table's delta log for deferred view maintenance.

#ifndef ABIVM_STORAGE_DATABASE_H_
#define ABIVM_STORAGE_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace abivm {

/// One logged modification as it was physically applied: the Modification
/// record plus the RowIds it touched. The durability layer (src/ckpt/)
/// logs these so recovery can re-apply them deterministically and verify
/// the replayed ids match.
struct AppliedModification {
  size_t table_index = 0;
  Version version = 0;
  ModKind kind = ModKind::kInsert;
  /// Row tombstoned by kDelete / kUpdate (undefined for kInsert).
  RowId deleted_id = 0;
  /// Row created by kInsert / kUpdate (undefined for kDelete).
  RowId inserted_id = 0;
  Row old_row;
  Row new_row;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; the name must be unused.
  Table& CreateTable(const std::string& name, Schema schema);

  /// Looks up a table by name; CHECK-fails if absent.
  Table& table(const std::string& name);
  const Table& table(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Version of the most recent modification (0 = only bulk-loaded data).
  Version current_version() const { return version_; }

  /// Bulk load during setup: inserts at version 0 and does NOT write the
  /// delta log (the initial view materialization covers it).
  RowId BulkLoad(Table& t, Row row) { return t.Insert(std::move(row), 0); }

  /// Logged modifications (each advances the global clock by one). These
  /// CHECK-fail on injected faults; robust callers use the Try* variants.
  RowId ApplyInsert(Table& t, Row row);
  void ApplyDelete(Table& t, RowId id);
  RowId ApplyUpdate(Table& t, RowId id, Row new_row);

  /// Status-returning apply path with `storage.apply_*` failpoints. A
  /// failure is atomic: the table, its delta log, and the global clock
  /// are untouched (the failpoint sits before the first mutation).
  Result<RowId> TryApplyInsert(Table& t, Row row);
  Status TryApplyDelete(Table& t, RowId id);
  Result<RowId> TryApplyUpdate(Table& t, RowId id, Row new_row);

  /// All tables in creation order.
  const std::vector<std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  /// Index of `t` in creation order; CHECK-fails if `t` is foreign.
  size_t TableIndex(const Table& t) const;

  /// Observer invoked after every successful logged modification (the
  /// Try* paths; bulk loads are not observed). At most one listener; the
  /// durability layer installs one for the lifetime of an engine run.
  /// Pass nullptr to detach. Disarmed cost is one branch per apply.
  using ApplyListener = std::function<void(const AppliedModification&)>;
  void SetApplyListener(ApplyListener listener) {
    listener_ = std::move(listener);
  }

  /// Recovery-only: restores the global modification clock from a
  /// checkpoint image (may only move forward).
  void RestoreVersion(Version v) {
    ABIVM_CHECK_GE(v, version_);
    version_ = v;
  }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  Version version_ = 0;
  ApplyListener listener_;
};

}  // namespace abivm

#endif  // ABIVM_STORAGE_DATABASE_H_
