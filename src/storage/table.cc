#include "storage/table.h"

#include <algorithm>

#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

RowId Table::Insert(Row row, Version version) {
  ABIVM_CHECK_MSG(schema_.RowMatches(row),
                  "row does not match schema of " << name_ << ": "
                                                  << RowToString(row));
  const RowId id = rows_.size();
  rows_.push_back(VersionedRow{std::move(row), version, kNeverDeleted});
  live_pos_.push_back(live_ids_.size());
  live_ids_.push_back(id);
  IndexRow(id);
  return id;
}

void Table::Delete(RowId id, Version version) {
  ABIVM_CHECK_LT(id, rows_.size());
  VersionedRow& r = rows_[id];
  ABIVM_CHECK_MSG(r.delete_version == kNeverDeleted,
                  "row " << id << " of " << name_ << " already deleted");
  ABIVM_CHECK_GE(version, r.insert_version);
  r.delete_version = version;
  if (checkpoint_tracking_ && id < checkpoint_mark_.slot_count) {
    checkpoint_mark_.tombstoned.push_back(id);
  }
  // Swap-remove from the live set.
  const size_t pos = live_pos_[id];
  ABIVM_CHECK(pos != kNotLive);
  const RowId last = live_ids_.back();
  live_ids_[pos] = last;
  live_pos_[last] = pos;
  live_ids_.pop_back();
  live_pos_[id] = kNotLive;
}

RowId Table::Update(RowId id, Row new_row, Version version) {
  Delete(id, version);
  return Insert(std::move(new_row), version);
}

const VersionedRow& Table::RowAt(RowId id) const {
  ABIVM_CHECK_LT(id, rows_.size());
  return rows_[id];
}

RowId Table::SampleLiveRow(Rng& rng) const {
  ABIVM_CHECK_MSG(!live_ids_.empty(), "table " << name_ << " is empty");
  const size_t pos = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(live_ids_.size()) - 1));
  return live_ids_[pos];
}

void Table::CreateHashIndex(const std::string& column_name) {
  const size_t column = schema_.ColumnIndex(column_name);
  if (indexes_.find(column) != indexes_.end()) return;
  if (checkpoint_tracking_) {
    checkpoint_mark_.new_indexed_columns.push_back(column);
  }
  FlatIndex& index = indexes_[column];
  index.ReserveKeys(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) {
    // Vacuumed slots have empty payloads and no index entries.
    if (rows_[id].row.empty()) continue;
    index.Insert(rows_[id].row[column], id);
  }
}

void Table::IndexRow(RowId id) {
  for (auto& [column, index] : indexes_) {
    index.Insert(rows_[id].row[column], id);
  }
}

Status DeltaLog::CheckRead(size_t first, size_t count) const {
  ABIVM_FAULT_POINT(fault::kFpStorageDeltaLogRead);
  if (first < base_offset_) {
    return Status::FailedPrecondition(
        "delta-log position " + std::to_string(first) +
        " was trimmed (first retained: " + std::to_string(base_offset_) +
        ")");
  }
  if (first + count > size()) {
    return Status::OutOfRange("delta-log read [" + std::to_string(first) +
                              ", " + std::to_string(first + count) +
                              ") past head " + std::to_string(size()));
  }
  return Status::Ok();
}

void DeltaLog::TrimBefore(size_t position) {
  if (position <= base_offset_) return;
  ABIVM_CHECK_LE(position, size());
  const size_t drop = position - base_offset_;
  mods_.erase(mods_.begin(), mods_.begin() + static_cast<int64_t>(drop));
  base_offset_ = position;
}

void Table::RestoreRowSlot(Row row, Version insert_version,
                           Version delete_version) {
  ABIVM_CHECK(indexes_.empty());
  ABIVM_CHECK_MSG(row.empty() || schema_.RowMatches(row),
                  "restored row does not match schema of " << name_);
  ABIVM_CHECK_LE(insert_version, delete_version);
  // A live slot must carry its payload; only vacuumed (dead) slots may be
  // empty.
  ABIVM_CHECK(!row.empty() || delete_version != kNeverDeleted);
  rows_.push_back(VersionedRow{std::move(row), insert_version,
                               delete_version});
  live_pos_.push_back(kNotLive);
}

void Table::RestoreLiveOrder(std::vector<RowId> live_ids) {
  size_t expected_live = 0;
  for (const VersionedRow& r : rows_) {
    if (r.delete_version == kNeverDeleted) ++expected_live;
  }
  ABIVM_CHECK_EQ(live_ids.size(), expected_live);
  std::fill(live_pos_.begin(), live_pos_.end(), kNotLive);
  for (size_t pos = 0; pos < live_ids.size(); ++pos) {
    const RowId id = live_ids[pos];
    ABIVM_CHECK_LT(id, rows_.size());
    ABIVM_CHECK_MSG(rows_[id].delete_version == kNeverDeleted,
                    "restored live id " << id << " of " << name_
                                        << " is not live");
    ABIVM_CHECK_MSG(live_pos_[id] == kNotLive,
                    "restored live id " << id << " of " << name_
                                        << " listed twice");
    live_pos_[id] = pos;
  }
  live_ids_ = std::move(live_ids);
}

void Table::BeginCheckpointTracking() {
  checkpoint_tracking_ = true;
  checkpoint_mark_.slot_count = rows_.size();
  checkpoint_mark_.log_head = delta_log_.size();
  checkpoint_mark_.tombstoned.clear();
  checkpoint_mark_.vacuumed.clear();
  checkpoint_mark_.new_indexed_columns.clear();
}

std::vector<size_t> Table::IndexedColumns() const {
  std::vector<size_t> columns;
  columns.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) columns.push_back(column);
  std::sort(columns.begin(), columns.end());
  return columns;
}

size_t Table::VacuumBefore(Version safe_version) {
  if (safe_version <= vacuum_horizon_) return 0;
  size_t reclaimed = 0;
  for (RowId id = 0; id < rows_.size(); ++id) {
    VersionedRow& r = rows_[id];
    // Reclaimable: deleted at or before the safe snapshot and not yet
    // cleared (an empty payload marks an already-vacuumed slot).
    if (r.delete_version > safe_version || r.row.empty()) continue;
    for (auto& [column, index] : indexes_) {
      ABIVM_CHECK(index.EraseOne(r.row[column], id));
    }
    Row().swap(r.row);  // release the payload
    if (checkpoint_tracking_ && id < checkpoint_mark_.slot_count) {
      checkpoint_mark_.vacuumed.push_back(id);
    }
    ++reclaimed;
  }
  vacuum_horizon_ = safe_version;
  return reclaimed;
}

}  // namespace abivm
