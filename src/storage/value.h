// Value: the dynamically-typed cell of the storage layer (int64, double,
// or string), with ordering, hashing and printing. Rows are vectors of
// Values.

#ifndef ABIVM_STORAGE_VALUE_H_
#define ABIVM_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace abivm {

enum class ValueType { kInt64, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// One table cell. Ordered and hashable so it can key indexes and
/// aggregate states. Comparisons across different types are by type rank
/// first (deterministic, never undefined), but schemas make cross-type
/// comparisons a bug in practice.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  int64_t AsInt64() const {
    ABIVM_CHECK_MSG(type() == ValueType::kInt64, "value is not int64");
    return std::get<int64_t>(data_);
  }
  double AsDouble() const {
    ABIVM_CHECK_MSG(type() == ValueType::kDouble, "value is not double");
    return std::get<double>(data_);
  }
  const std::string& AsString() const {
    ABIVM_CHECK_MSG(type() == ValueType::kString, "value is not string");
    return std::get<std::string>(data_);
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return data_ < other.data_; }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  uint64_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

/// One table row.
using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const Value& v : row) {
      uint64_t x = h ^ v.Hash();
      h = SplitMix64(x);
    }
    return static_cast<size_t>(h);
  }
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

std::string RowToString(const Row& row);

}  // namespace abivm

#endif  // ABIVM_STORAGE_VALUE_H_
