// Multiversion in-memory table.
//
// Every row carries [insert_version, delete_version); an update is a
// delete + insert at a fresh version. Readers scan "as of" an explicit
// version, so the IVM layer can join a delta batch against exactly the
// base-table state its watermark entitles it to -- the paper's "state bug"
// (maintenance queries accidentally seeing too-new base state) is
// impossible by construction.

#ifndef ABIVM_STORAGE_TABLE_H_
#define ABIVM_STORAGE_TABLE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_multimap.h"
#include "common/random.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace abivm {

/// Global modification version. Version 0 is the initial bulk load; every
/// later modification gets a unique version from the Database counter.
using Version = uint64_t;
inline constexpr Version kNeverDeleted =
    std::numeric_limits<Version>::max();

using RowId = uint64_t;

struct VersionedRow {
  Row row;
  Version insert_version = 0;
  Version delete_version = kNeverDeleted;
};

/// The kind of a logical base-table modification.
enum class ModKind { kInsert, kDelete, kUpdate };

/// One logical modification, as recorded in a table's delta log. This is
/// the unit the paper counts: an update is ONE modification (contributing
/// one delta- row and one delta+ row when processed).
struct Modification {
  Version version = 0;
  ModKind kind = ModKind::kInsert;
  Row old_row;  // filled for kDelete / kUpdate
  Row new_row;  // filled for kInsert / kUpdate
};

/// Append-only log of a table's modifications. Consumers (materialized
/// views) keep their own watermarks (global positions) into it; positions
/// survive garbage collection of the consumed prefix.
class DeltaLog {
 public:
  void Append(Modification mod) { mods_.push_back(std::move(mod)); }

  /// Total modifications ever appended (positions are in [0, size())).
  size_t size() const { return base_offset_ + mods_.size(); }

  /// First position still retained (everything before was trimmed).
  size_t first_retained() const { return base_offset_; }

  const Modification& At(size_t position) const {
    ABIVM_CHECK_GE(position, base_offset_);
    ABIVM_CHECK_LT(position, size());
    return mods_[position - base_offset_];
  }

  /// Status-returning readability check for the range
  /// [first, first + count): OutOfRange when it extends past the head,
  /// FailedPrecondition when its prefix was already trimmed. Carries the
  /// `storage.delta_log_read` failpoint, so a consumer that calls this
  /// before a run of At() gets fault injection for the whole read.
  Status CheckRead(size_t first, size_t count) const;

  /// Garbage-collects every modification before `position` (exclusive).
  /// Callers must ensure no consumer watermark is below it. Positions of
  /// retained modifications are unchanged.
  void TrimBefore(size_t position);

  /// Recovery-only: rebuilds a trimmed log from a checkpoint image. The
  /// log must be empty; subsequent Appends restore the retained suffix at
  /// positions [base_offset, ...).
  void RestoreBaseOffset(size_t base_offset) {
    ABIVM_CHECK_EQ(base_offset_, size_t{0});
    ABIVM_CHECK(mods_.empty());
    base_offset_ = base_offset;
  }

 private:
  size_t base_offset_ = 0;
  std::vector<Modification> mods_;
};

/// Physical churn a table accumulated since the last checkpoint mark:
/// everything an incremental image needs about PRE-EXISTING slots. Slots
/// allocated after the mark (id >= slot_count) are not tracked -- the
/// delta capture serializes them whole.
struct TableCheckpointMark {
  /// Physical slot count at the mark (new slots have id >= this).
  size_t slot_count = 0;
  /// delta_log().size() at the mark (new modifications start here).
  size_t log_head = 0;
  /// Pre-existing slots tombstoned since the mark, in tombstone order.
  std::vector<RowId> tombstoned;
  /// Pre-existing slots whose payloads were vacuumed since the mark.
  std::vector<RowId> vacuumed;
  /// Columns indexed since the mark (CreateHashIndex actually building).
  std::vector<size_t> new_indexed_columns;
};

/// Multiversion table with optional hash indexes and O(1) live-row
/// sampling (used by the update-stream generators).
class Table {
 public:
  /// Physical index layout: a flat open-addressing multi-map from join
  /// key to RowId (common/flat_multimap.h) -- probes touch a contiguous
  /// bucket array and an entry arena, never per-node heap blocks.
  using FlatIndex = FlatMultiMap<Value, RowId, ValueHash>;

  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a live row at `version`; returns its id.
  RowId Insert(Row row, Version version);

  /// Tombstones a live row at `version`.
  void Delete(RowId id, Version version);

  /// Delete + insert; returns the new row's id.
  RowId Update(RowId id, Row new_row, Version version);

  const VersionedRow& RowAt(RowId id) const;

  /// True iff the row existed at snapshot `v` (insert <= v < delete).
  bool VisibleAt(RowId id, Version v) const {
    const VersionedRow& r = RowAt(id);
    return r.insert_version <= v && v < r.delete_version;
  }

  size_t live_row_count() const { return live_ids_.size(); }

  /// Live RowIds in sampling order (position i is what SampleLiveRow
  /// draws when the PRNG lands on i). Checkpoints serialize this order
  /// verbatim -- see RestoreLiveOrder.
  const std::vector<RowId>& live_ids() const { return live_ids_; }

  /// Uniformly random currently-live row (CHECKs the table is non-empty).
  RowId SampleLiveRow(Rng& rng) const;

  /// Total physical row slots ever allocated (live + tombstoned).
  size_t physical_row_count() const { return rows_.size(); }

  /// Calls fn(RowId, const Row&) for every row visible at `v`. Requires
  /// v >= vacuum_horizon() (older snapshots were garbage-collected).
  template <typename Fn>
  void ScanAt(Version v, Fn&& fn) const {
    CheckSnapshotReadable(v);
    ScanRangeAt(v, 0, rows_.size(), std::forward<Fn>(fn));
  }

  /// ScanAt restricted to physical row ids [begin, end): the unit of the
  /// partitioned scan-side probe. Concatenating the results of contiguous
  /// ranges in range order reproduces a full ScanAt exactly, whatever the
  /// partitioning. Callers must have validated the snapshot (ScanAt does;
  /// parallel workers call CheckSnapshotReadable once up front).
  template <typename Fn>
  void ScanRangeAt(Version v, RowId begin, RowId end, Fn&& fn) const {
    ABIVM_DCHECK(end <= rows_.size());
    for (RowId id = begin; id < end; ++id) {
      const VersionedRow& r = rows_[id];
      if (r.insert_version <= v && v < r.delete_version) {
        fn(id, r.row);
      }
    }
  }

  /// CHECKs that snapshot `v` has not been vacuumed away.
  void CheckSnapshotReadable(Version v) const {
    ABIVM_CHECK_MSG(v >= vacuum_horizon_,
                    "snapshot " << v << " of " << name_
                                << " was vacuumed (horizon "
                                << vacuum_horizon_ << ")");
  }

  /// Reclaims the payloads and index entries of row versions that are
  /// invisible at every snapshot >= safe_version (i.e. rows deleted at or
  /// before it). RowIds stay stable; reads at snapshots older than
  /// safe_version become invalid (CHECKed). Returns rows reclaimed.
  size_t VacuumBefore(Version safe_version);

  /// Oldest snapshot still readable.
  Version vacuum_horizon() const { return vacuum_horizon_; }

  /// Builds a hash index on the named column (indexing all current and
  /// future rows; entries are never removed, visibility filters at probe
  /// time). Idempotent.
  void CreateHashIndex(const std::string& column_name);

  /// The index on `column`, or nullptr. ONE map lookup: operators fetch
  /// the index once per batch and probe the returned object per row,
  /// instead of the old HasIndexOn + IndexLookup pair that re-resolved
  /// the column on every probe.
  const FlatIndex* IndexOn(size_t column) const {
    const auto it = indexes_.find(column);
    return it == indexes_.end() ? nullptr : &it->second;
  }

  bool HasIndexOn(size_t column) const {
    return IndexOn(column) != nullptr;
  }

  /// True iff some index of this table would grow (rehash) on the next
  /// inserted row -- the deterministic pre-check the storage apply path
  /// uses to place the `flat_index.grow` failpoint BEFORE any mutation.
  bool IndexGrowthPending() const {
    for (const auto& [column, index] : indexes_) {
      if (index.WouldGrowOnInsert()) return true;
    }
    return false;
  }

  /// Calls fn(RowId, const Row&) for rows with row[column] == key visible
  /// at `v`. Requires an index on `column`. Convenience wrapper over
  /// IndexOn for one-off probes; batch operators hold the FlatIndex and
  /// probe it directly (see exec/operators.cc).
  template <typename Fn>
  void IndexLookup(size_t column, const Value& key, Version v,
                   Fn&& fn) const {
    CheckSnapshotReadable(v);
    const FlatIndex* idx = IndexOn(column);
    ABIVM_CHECK_MSG(idx != nullptr,
                    "no index on column " << column << " of " << name_);
    idx->ForEachValue(key, [&](const RowId& id) {
      const VersionedRow& r = rows_[id];
      if (r.insert_version <= v && v < r.delete_version) {
        fn(id, r.row);
      }
    });
  }

  /// Probes `idx` (one of THIS table's indexes, from IndexOn) with a
  /// caller-computed key hash and calls fn(RowId, const Row&) for every
  /// match visible at `v`. The batch-join hot path: the caller resolves
  /// the index and checks the snapshot once per batch, hashes each key
  /// once, and this does only the probe + visibility filter.
  template <typename Fn>
  void ProbeIndexHashed(const FlatIndex& idx, uint64_t hash,
                        const Value& key, Version v, Fn&& fn) const {
    idx.ForEachValueHashed(hash, key, [&](const RowId& id) {
      const VersionedRow& r = rows_[id];
      if (r.insert_version <= v && v < r.delete_version) {
        fn(id, r.row);
      }
    });
  }

  DeltaLog& delta_log() { return delta_log_; }
  const DeltaLog& delta_log() const { return delta_log_; }

  /// Recovery-only restore path (src/ckpt/): rebuilds the table's exact
  /// physical state from a checkpoint image. RestoreRowSlot appends one
  /// physical slot in RowId order (an empty `row` restores an
  /// already-vacuumed slot); slots are NOT entered into the live set --
  /// RestoreLiveOrder then installs the checkpointed live_ids sequence,
  /// whose ORDER matters: SampleLiveRow draws by position, so a resumed
  /// update stream only reproduces the pre-crash one if the swap-remove
  /// history encoded in the ordering is restored bit-exactly. Call before
  /// CreateHashIndex (rebuilding indexes re-inserts ids ascending, the
  /// same per-key chain order organic inserts produced).
  void RestoreRowSlot(Row row, Version insert_version,
                      Version delete_version);
  void RestoreLiveOrder(std::vector<RowId> live_ids);
  void RestoreVacuumHorizon(Version v) {
    ABIVM_CHECK_GE(v, vacuum_horizon_);
    vacuum_horizon_ = v;
  }

  /// Columns with a hash index, ascending (checkpoint catalog).
  std::vector<size_t> IndexedColumns() const;

  /// Starts (or restarts) checkpoint dirty tracking: snapshots the
  /// current slot count and delta-log head and begins recording which
  /// PRE-EXISTING slots are tombstoned or vacuumed and which indexes are
  /// created. The durability layer calls this right after publishing an
  /// image; the next incremental capture reads checkpoint_mark() and
  /// restarts tracking. Recording is O(1) per event and only active once
  /// this has been called, so non-durable runs pay nothing.
  void BeginCheckpointTracking();

  /// The churn record accumulated since BeginCheckpointTracking.
  const TableCheckpointMark& checkpoint_mark() const {
    ABIVM_CHECK_MSG(checkpoint_tracking_,
                    "checkpoint tracking not started on " << name_);
    return checkpoint_mark_;
  }

  bool checkpoint_tracking() const { return checkpoint_tracking_; }

 private:
  void IndexRow(RowId id);

  std::string name_;
  Schema schema_;
  std::vector<VersionedRow> rows_;
  std::unordered_map<size_t, FlatIndex> indexes_;
  // Live-row sampling support: ids of live rows + a DENSE id -> slot
  // position array (RowIds are contiguous, so a hash map here was pure
  // overhead on the insert/delete hot path). kNotLive marks dead slots.
  std::vector<RowId> live_ids_;
  std::vector<size_t> live_pos_;
  static constexpr size_t kNotLive = static_cast<size_t>(-1);
  DeltaLog delta_log_;
  Version vacuum_horizon_ = 0;
  bool checkpoint_tracking_ = false;
  TableCheckpointMark checkpoint_mark_;
};

}  // namespace abivm

#endif  // ABIVM_STORAGE_TABLE_H_
