#include "storage/schema.h"

#include <sstream>

namespace abivm {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  ABIVM_CHECK_MSG(!columns_.empty(), "schema needs at least one column");
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      ABIVM_CHECK_MSG(columns_[i].name != columns_[j].name,
                      "duplicate column name " << columns_[i].name);
    }
  }
}

const Column& Schema::column(size_t i) const {
  ABIVM_CHECK_LT(i, columns_.size());
  return columns_[i];
}

size_t Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  ABIVM_CHECK_MSG(false, "no column named " << name);
  return 0;
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != columns_[i].type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << columns_[i].name << ":" << ValueTypeName(columns_[i].type);
  }
  oss << ")";
  return oss.str();
}

}  // namespace abivm
