#include "storage/database.h"

#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

Table& Database::CreateTable(const std::string& name, Schema schema) {
  ABIVM_CHECK_MSG(!HasTable(name), "table " << name << " already exists");
  tables_.push_back(std::make_unique<Table>(name, std::move(schema)));
  return *tables_.back();
}

Table& Database::table(const std::string& name) {
  for (auto& t : tables_) {
    if (t->name() == name) return *t;
  }
  ABIVM_CHECK_MSG(false, "no table named " << name);
  return *tables_.front();
}

const Table& Database::table(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return *t;
  }
  ABIVM_CHECK_MSG(false, "no table named " << name);
  return *tables_.front();
}

bool Database::HasTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return true;
  }
  return false;
}

size_t Database::TableIndex(const Table& t) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].get() == &t) return i;
  }
  ABIVM_CHECK_MSG(false, "table " << t.name() << " is not in this database");
  return 0;
}

RowId Database::ApplyInsert(Table& t, Row row) {
  Result<RowId> id = TryApplyInsert(t, std::move(row));
  ABIVM_CHECK_MSG(id.ok(), id.status().ToString());
  return *id;
}

void Database::ApplyDelete(Table& t, RowId id) {
  const Status status = TryApplyDelete(t, id);
  ABIVM_CHECK_MSG(status.ok(), status.ToString());
}

RowId Database::ApplyUpdate(Table& t, RowId id, Row new_row) {
  Result<RowId> new_id = TryApplyUpdate(t, id, std::move(new_row));
  ABIVM_CHECK_MSG(new_id.ok(), new_id.status().ToString());
  return *new_id;
}

Result<RowId> Database::TryApplyInsert(Table& t, Row row) {
  ABIVM_FAULT_POINT(fault::kFpStorageApplyInsert);
  if (t.IndexGrowthPending()) {
    ABIVM_FAULT_POINT(fault::kFpFlatIndexGrow);
  }
  const Version v = ++version_;
  const RowId id = t.Insert(row, v);
  t.delta_log().Append(Modification{v, ModKind::kInsert, {}, row});
  if (listener_) {
    listener_(AppliedModification{TableIndex(t), v, ModKind::kInsert, 0,
                                  id, {}, std::move(row)});
  }
  return id;
}

Status Database::TryApplyDelete(Table& t, RowId id) {
  ABIVM_FAULT_POINT(fault::kFpStorageApplyDelete);
  const Version v = ++version_;
  Row old_row = t.RowAt(id).row;
  t.Delete(id, v);
  t.delta_log().Append(Modification{v, ModKind::kDelete, old_row, {}});
  if (listener_) {
    listener_(AppliedModification{TableIndex(t), v, ModKind::kDelete, id,
                                  0, std::move(old_row), {}});
  }
  return Status::Ok();
}

Result<RowId> Database::TryApplyUpdate(Table& t, RowId id, Row new_row) {
  ABIVM_FAULT_POINT(fault::kFpStorageApplyUpdate);
  if (t.IndexGrowthPending()) {
    ABIVM_FAULT_POINT(fault::kFpFlatIndexGrow);
  }
  const Version v = ++version_;
  Row old_row = t.RowAt(id).row;
  const RowId new_id = t.Update(id, new_row, v);
  t.delta_log().Append(
      Modification{v, ModKind::kUpdate, old_row, new_row});
  if (listener_) {
    listener_(AppliedModification{TableIndex(t), v, ModKind::kUpdate, id,
                                  new_id, std::move(old_row),
                                  std::move(new_row)});
  }
  return new_id;
}

}  // namespace abivm
