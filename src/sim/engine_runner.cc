#include "sim/engine_runner.h"

#include <algorithm>
#include <cmath>

#include "common/float_compare.h"

namespace abivm {

EngineTrace RunOnEngine(ViewMaintainer& maintainer,
                        const ArrivalSequence& arrivals,
                        const CostModel& model, double budget,
                        Policy& policy, const ModificationDriver& driver,
                        EngineRunnerOptions options) {
  const size_t n = maintainer.num_tables();
  ABIVM_CHECK_EQ(arrivals.n(), n);
  ABIVM_CHECK_EQ(model.n(), n);
  const EngineResumeState* const resume = options.resume;
  if (resume == nullptr) {
    ABIVM_CHECK_MSG(maintainer.IsConsistent(),
                    "engine run must start from a refreshed view");
  }
  ABIVM_CHECK_GE(options.retry.max_attempts, size_t{1});
  const TimeStep horizon = arrivals.horizon();
  if (resume == nullptr) {
    policy.Reset(model, budget);
  } else {
    // The recovery already replayed the policy's decision history, so its
    // internal state (e.g. replanning estimators) is warm; a Reset here
    // would erase it.
    // first_step == horizon + 1 is legal: the crash hit after the final
    // step's record was durable, so there is nothing left to execute.
    ABIVM_CHECK_LE(resume->first_step, horizon + 1);
    if (resume->mid_step) {
      ABIVM_CHECK_EQ(resume->partial.t, resume->first_step);
      ABIVM_CHECK_EQ(resume->batch_committed.size(), n);
    }
  }

  // Attach the metrics registry to the maintainer for the duration of
  // the run so every pipeline stage records its `ivm.op.*` timer (and
  // BatchResult::profile is filled). Restored on exit.
  obs::MetricRegistry* const saved_metrics = maintainer.metrics();
  if (options.metrics != nullptr) maintainer.SetMetrics(options.metrics);
  const bool profiled = maintainer.profiling_enabled();

  EngineTrace trace;
  const TimeStep first_step = resume == nullptr ? 0 : resume->first_step;
  if (options.record_steps) {
    trace.steps.reserve(static_cast<size_t>(horizon - first_step) + 1);
  }
  // Aborts the run dead at step t (a durability fault models a crash:
  // nothing after the failed hook happens, in memory or on disk).
  const auto abort_run = [&](TimeStep t, const Status& status) {
    trace.aborted = true;
    trace.aborted_at = t;
    trace.abort_reason = status.ToString();
  };
  for (TimeStep t = first_step; t <= horizon; ++t) {
    const StateVec& d = arrivals.At(t);
    const bool resumed_mid_step =
        resume != nullptr && resume->mid_step && t == first_step;
    EngineStepRecord record;
    if (resumed_mid_step) {
      // The crashed run already applied this step's arrivals (the WAL
      // replay restored them) and durably logged its plan; re-enter the
      // step with the recovered committed prefix.
      record = resume->partial;
      ABIVM_CHECK_EQ(record.action.size(), n);
    } else {
      for (size_t i = 0; i < n; ++i) {
        for (Count c = 0; c < d[i]; ++c) driver(i);
      }
      const StateVec pre_state = maintainer.PendingVec();

      StateVec action;
      if (t == horizon) {
        action = pre_state;  // forced refresh
      } else {
        action = policy.Act(t, pre_state, d);
        ABIVM_CHECK_EQ(action.size(), n);
        ABIVM_CHECK_MSG(FitsWithin(action, pre_state),
                        "policy " << policy.name()
                                  << " acted beyond the pending deltas");
      }

      record = EngineStepRecord{
          .t = t, .arrivals = d, .pre_state = pre_state, .action = action};
      if (options.durability != nullptr) {
        const Status planned =
            options.durability->OnStepPlanned(record, t == horizon);
        if (!planned.ok()) {
          abort_run(t, planned);
          break;
        }
      }
    }
    const StateVec& action = record.action;
    // Modelled cost burned by this step's FAILED attempts so far; the
    // budget-aware give-up rule compares it against the step's cost
    // bound C (the same epsilon-tolerant comparison every other
    // fullness/budget decision uses).
    double step_attempted_model_cost = 0.0;
    bool step_aborted = false;
    for (size_t i = 0; i < n; ++i) {
      if (resumed_mid_step && resume->batch_committed[i] != 0) continue;
      // Charge the modelled cost per table as the batch COMMITS;
      // summing model.Cost(i, ...) in table order reproduces
      // model.TotalCost(action) bit-exactly when every batch commits
      // (both are in-order accumulations from 0.0, and Cost(i, 0) == 0).
      const double batch_model_cost = model.Cost(i, action[i]);
      if (action[i] == 0) continue;
      // Retry loop: a failed batch left the view untouched (atomic
      // commit), so re-running the identical batch is safe. Backoff is
      // charged in simulated time to stay deterministic.
      for (size_t attempt = 0;; ++attempt) {
        BatchResult result;
        const Status status = maintainer.ProcessBatchChecked(
            i, static_cast<size_t>(action[i]), &result);
        if (status.ok()) {
          record.model_cost += batch_model_cost;
          record.actual_ms += result.wall_ms;
          record.stats += result.stats;
          trace.exec_stats += result.stats;
          if (profiled) {
            MergeProfileInto(trace.operator_profiles, result.profile);
          }
          if (options.metrics != nullptr) {
            options.metrics->counter("engine.batches").Add(1);
            options.metrics->counter("engine.modifications_processed")
                .Add(result.processed);
            options.metrics->timer("engine.batch_ms").Record(result.wall_ms);
          }
          if (options.durability != nullptr) {
            const Status committed = options.durability->OnBatchCommitted(
                t, i, static_cast<size_t>(action[i]), result);
            if (!committed.ok()) {
              abort_run(t, committed);
              step_aborted = true;
            }
          }
          break;
        }
        // The failed attempt's work was discarded by the rollback, but
        // it was physically performed -- account it separately so retry
        // cost stays visible instead of vanishing.
        ++record.failures;
        record.attempted_ms += result.wall_ms;
        record.attempted_stats += result.stats;
        trace.attempted_exec_stats += result.stats;
        ++trace.attempted_batches;
        step_attempted_model_cost += batch_model_cost;
        if (options.metrics != nullptr) {
          options.metrics->counter("engine.attempted_batches").Add(1);
          options.metrics->timer("engine.attempted_batch_ms")
              .Record(result.wall_ms);
        }
        const bool attempts_exhausted =
            attempt + 1 >= options.retry.max_attempts;
        // Budget-aware give-up: once the step's failed attempts have
        // burned more modelled cost than the step's committed-cost bound
        // C, further retries can only make this step more expensive than
        // any step is allowed to be -- stop paying.
        const bool over_budget =
            options.retry.budget_aware &&
            CostExceedsBudget(step_attempted_model_cost, budget);
        if (attempts_exhausted || over_budget) {
          // Degrade: abandon this batch; its residue stays pending and
          // the policy re-plans against it next step. The modelled cost
          // of the abandoned batch is recorded apart from the committed
          // spend -- the work never happened.
          record.abandoned_model_cost += batch_model_cost;
          record.degraded = true;
          if (over_budget && !attempts_exhausted) {
            ++record.retry_budget_abandons;
          }
          break;
        }
        record.backoff_ms +=
            std::min(options.retry.backoff_cap_ms,
                     options.retry.backoff_base_ms *
                         std::pow(options.retry.backoff_multiplier,
                                  static_cast<double>(attempt)));
        ++record.retries;
      }
      if (step_aborted) break;
    }
    if (step_aborted) {
      // A crashed step is not part of the trace: its committed prefix is
      // on disk (WAL), and the recovery rebuilds the step from there.
      break;
    }
    trace.total_model_cost += record.model_cost;
    trace.abandoned_model_cost += record.abandoned_model_cost;
    trace.total_actual_ms += record.actual_ms;
    trace.total_attempted_ms += record.attempted_ms;
    trace.failures += record.failures;
    trace.retries += record.retries;
    trace.retry_budget_abandons += record.retry_budget_abandons;
    trace.total_backoff_ms += record.backoff_ms;
    if (record.degraded) ++trace.degraded_steps;
    if (!IsZeroVec(action)) ++trace.action_count;
    record.violation =
        t < horizon && model.IsFull(maintainer.PendingVec(), budget);
    if (record.violation) ++trace.violations;
    if (options.durability != nullptr) {
      const Status ended = options.durability->OnStepEnd(record);
      if (!ended.ok()) {
        abort_run(t, ended);
        break;
      }
    }
    if (options.record_steps) {
      trace.steps.push_back(std::move(record));
    }
  }
  if (!trace.aborted) {
    trace.ended_consistent = maintainer.IsConsistent();
    // Graceful degradation is only legitimate under persistent failures;
    // a run with no degraded step must have refreshed completely.
    if (trace.degraded_steps == 0) {
      ABIVM_CHECK_MSG(trace.ended_consistent,
                      "no step degraded yet the view ended inconsistent");
    }
  }
  if (options.metrics != nullptr) {
    obs::MetricRegistry& m = *options.metrics;
    m.counter("engine.actions").Add(trace.action_count);
    m.counter("engine.violations").Add(trace.violations);
    m.counter("engine.failures").Add(trace.failures);
    m.counter("engine.retries").Add(trace.retries);
    m.counter("engine.degraded_steps").Add(trace.degraded_steps);
    m.counter("engine.retry_budget_abandons")
        .Add(trace.retry_budget_abandons);
    m.counter("engine.rows_scanned").Add(trace.exec_stats.rows_scanned);
    m.counter("engine.index_probes").Add(trace.exec_stats.index_probes);
    m.counter("engine.hash_build_rows")
        .Add(trace.exec_stats.hash_build_rows);
    m.counter("engine.output_rows").Add(trace.exec_stats.output_rows);
    m.counter("engine.rows_filtered").Add(trace.exec_stats.rows_filtered);
    m.counter("engine.rows_projected")
        .Add(trace.exec_stats.rows_projected);
    m.counter("engine.attempted_rows_scanned")
        .Add(trace.attempted_exec_stats.rows_scanned);
    m.counter("engine.attempted_index_probes")
        .Add(trace.attempted_exec_stats.index_probes);
    m.counter("engine.attempted_hash_build_rows")
        .Add(trace.attempted_exec_stats.hash_build_rows);
    m.counter("engine.attempted_output_rows")
        .Add(trace.attempted_exec_stats.output_rows);
  }
  if (options.metrics != nullptr) maintainer.SetMetrics(saved_metrics);
  return trace;
}

}  // namespace abivm
