#include "sim/engine_runner.h"

namespace abivm {

EngineTrace RunOnEngine(ViewMaintainer& maintainer,
                        const ArrivalSequence& arrivals,
                        const CostModel& model, double budget,
                        Policy& policy, const ModificationDriver& driver,
                        EngineRunnerOptions options) {
  const size_t n = maintainer.num_tables();
  ABIVM_CHECK_EQ(arrivals.n(), n);
  ABIVM_CHECK_EQ(model.n(), n);
  ABIVM_CHECK_MSG(maintainer.IsConsistent(),
                  "engine run must start from a refreshed view");
  const TimeStep horizon = arrivals.horizon();
  policy.Reset(model, budget);

  EngineTrace trace;
  if (options.record_steps) {
    trace.steps.reserve(static_cast<size_t>(horizon) + 1);
  }
  for (TimeStep t = 0; t <= horizon; ++t) {
    const StateVec& d = arrivals.At(t);
    for (size_t i = 0; i < n; ++i) {
      for (Count c = 0; c < d[i]; ++c) driver(i);
    }
    const StateVec pre_state = maintainer.PendingVec();

    StateVec action;
    if (t == horizon) {
      action = pre_state;  // forced refresh
    } else {
      action = policy.Act(t, pre_state, d);
      ABIVM_CHECK_EQ(action.size(), n);
      ABIVM_CHECK_MSG(FitsWithin(action, pre_state),
                      "policy " << policy.name()
                                << " acted beyond the pending deltas");
    }

    double actual_ms = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (action[i] == 0) continue;
      const BatchResult result =
          maintainer.ProcessBatch(i, static_cast<size_t>(action[i]));
      actual_ms += result.wall_ms;
      trace.exec_stats += result.stats;
      if (options.metrics != nullptr) {
        options.metrics->counter("engine.batches").Add(1);
        options.metrics->counter("engine.modifications_processed")
            .Add(result.processed);
        options.metrics->timer("engine.batch_ms").Record(result.wall_ms);
      }
    }
    const double model_cost = model.TotalCost(action);
    trace.total_model_cost += model_cost;
    trace.total_actual_ms += actual_ms;
    if (!IsZeroVec(action)) ++trace.action_count;
    if (t < horizon &&
        model.IsFull(maintainer.PendingVec(), budget)) {
      ++trace.violations;
    }
    if (options.record_steps) {
      trace.steps.push_back(EngineStepRecord{t, d, pre_state, action,
                                             model_cost, actual_ms});
    }
  }
  ABIVM_CHECK(maintainer.IsConsistent());
  if (options.metrics != nullptr) {
    obs::MetricRegistry& m = *options.metrics;
    m.counter("engine.actions").Add(trace.action_count);
    m.counter("engine.violations").Add(trace.violations);
    m.counter("engine.rows_scanned").Add(trace.exec_stats.rows_scanned);
    m.counter("engine.index_probes").Add(trace.exec_stats.index_probes);
    m.counter("engine.hash_build_rows")
        .Add(trace.exec_stats.hash_build_rows);
    m.counter("engine.output_rows").Add(trace.exec_stats.output_rows);
  }
  return trace;
}

}  // namespace abivm
