// Discrete-time simulator: drives a Policy over an arrival sequence under
// a cost model, exactly as the paper's experiments do ("we simulate the
// execution of maintenance plans ... and use the cost functions to
// calculate costs of plans", Section 5).

#ifndef ABIVM_SIM_SIMULATOR_H_
#define ABIVM_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "core/policy.h"
#include "obs/metrics.h"

namespace abivm {

/// One simulated time step.
struct StepRecord {
  TimeStep t = 0;
  StateVec arrivals;
  StateVec pre_state;   // s_t
  StateVec action;      // p_t
  StateVec post_state;  // s_{t+}
  double action_cost = 0.0;
};

/// Full outcome of a simulated run.
struct Trace {
  std::vector<StepRecord> steps;
  double total_cost = 0.0;
  /// Post-action states (t < T) that exceeded the budget. A correct policy
  /// keeps this at zero; the simulator records rather than crashes so
  /// experiments can report constraint violations.
  uint64_t violations = 0;
  /// Number of non-zero actions taken (including the final refresh).
  uint64_t action_count = 0;
  /// Wall-clock time of the whole simulated run.
  double wall_ms = 0.0;

  /// The realized plan (for validity/LGM checks in tests).
  MaintenancePlan AsPlan(size_t n, TimeStep horizon) const;
};

struct SimulatorOptions {
  /// If true, CHECK-fail on a constraint violation instead of recording.
  bool strict = false;
  /// If false, the Trace keeps only aggregates (no per-step records);
  /// useful for long horizons in benchmarks.
  bool record_steps = true;
  /// Optional metrics sink. When set, the simulator records `sim.*`
  /// counters (steps, actions, violations), a `sim.policy_act_ms` span
  /// per policy decision, and a `sim.action_cost` histogram.
  obs::MetricRegistry* metrics = nullptr;
};

/// Runs `policy` over the instance: at each step t arrivals are appended,
/// the policy acts, and at t = T the simulator forces the final refresh
/// p_T = s_T (charging its cost). Resets the policy first.
Trace Simulate(const ProblemInstance& instance, Policy& policy,
               SimulatorOptions options = {});

}  // namespace abivm

#endif  // ABIVM_SIM_SIMULATOR_H_
