#include "sim/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace abivm {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ABIVM_CHECK(!header_.empty());
}

void ReportTable::AddRow(std::vector<std::string> cells) {
  ABIVM_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void ReportTable::PrintAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void ReportTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace abivm
