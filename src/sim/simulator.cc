#include "sim/simulator.h"

#include "common/stopwatch.h"
#include "obs/span.h"

namespace abivm {

MaintenancePlan Trace::AsPlan(size_t n, TimeStep horizon) const {
  MaintenancePlan plan(n, horizon);
  for (const StepRecord& step : steps) {
    if (!IsZeroVec(step.action)) plan.SetAction(step.t, step.action);
  }
  return plan;
}

Trace Simulate(const ProblemInstance& instance, Policy& policy,
               SimulatorOptions options) {
  const Stopwatch watch;
  const TimeStep horizon = instance.horizon();
  const size_t n = instance.n();
  policy.Reset(instance.cost_model, instance.budget);

  // Interned once: the per-decision span sits in the hot loop.
  obs::MetricRegistry* metrics = options.metrics;
  obs::Timer* act_timer =
      metrics == nullptr ? nullptr : &metrics->timer("sim.policy_act_ms");

  Trace trace;
  if (options.record_steps) {
    trace.steps.reserve(static_cast<size_t>(horizon) + 1);
  }
  StateVec state = ZeroVec(n);
  for (TimeStep t = 0; t <= horizon; ++t) {
    const StateVec& arrivals = instance.arrivals.At(t);
    state = AddVec(state, arrivals);
    const StateVec pre_state = state;

    StateVec action;
    if (t == horizon) {
      // Forced refresh: the view must be brought fully up to date at T
      // (p_T = s_T by Definition 1), so the policy is not consulted.
      action = pre_state;
    } else {
      obs::ScopedSpan span(act_timer);
      action = policy.Act(t, pre_state, arrivals);
      ABIVM_CHECK_EQ(action.size(), n);
      ABIVM_CHECK_MSG(FitsWithin(action, pre_state),
                      "policy " << policy.name()
                                << " acted beyond accumulated state at t="
                                << t);
    }
    state = SubVec(state, action);
    const double cost = instance.cost_model.TotalCost(action);
    trace.total_cost += cost;
    if (!IsZeroVec(action)) {
      ++trace.action_count;
      if (metrics != nullptr) {
        metrics->histogram("sim.action_cost").Record(cost);
      }
    }

    if (t < horizon && instance.cost_model.IsFull(state, instance.budget)) {
      ABIVM_CHECK_MSG(!options.strict,
                      "policy " << policy.name()
                                << " violated the response-time constraint "
                                   "at t=" << t);
      ++trace.violations;
    }
    if (options.record_steps) {
      trace.steps.push_back(
          StepRecord{t, arrivals, pre_state, action, state, cost});
    }
  }
  ABIVM_CHECK(IsZeroVec(state));
  trace.wall_ms = watch.ElapsedMs();
  if (metrics != nullptr) {
    metrics->counter("sim.steps").Add(static_cast<uint64_t>(horizon) + 1);
    metrics->counter("sim.actions").Add(trace.action_count);
    metrics->counter("sim.violations").Add(trace.violations);
    metrics->timer("sim.run_ms").Record(trace.wall_ms);
  }
  return trace;
}

}  // namespace abivm
