// EngineRunner: executes a maintenance policy against the REAL storage +
// IVM engine instead of the cost-model simulator. Decisions (fullness,
// action choice) still use the modelled cost functions -- as a deployed
// system would -- while every action's actual wall-clock cost is measured.
// Comparing the two validates the simulation methodology (the paper's
// Figure 5).

#ifndef ABIVM_SIM_ENGINE_RUNNER_H_
#define ABIVM_SIM_ENGINE_RUNNER_H_

#include <functional>
#include <vector>

#include "core/arrivals.h"
#include "core/cost_model.h"
#include "core/policy.h"
#include "ivm/maintainer.h"
#include "obs/metrics.h"

namespace abivm {

/// Applies one base-table modification to the database (e.g. one random
/// supplycost update). The runner calls it d_t[i] times per step.
using ModificationDriver = std::function<void(size_t table_index)>;

struct EngineStepRecord {
  TimeStep t = 0;
  StateVec arrivals;
  StateVec pre_state;
  StateVec action;
  double model_cost = 0.0;
  double actual_ms = 0.0;
};

struct EngineTrace {
  std::vector<EngineStepRecord> steps;
  double total_model_cost = 0.0;
  double total_actual_ms = 0.0;
  uint64_t violations = 0;
  uint64_t action_count = 0;
  /// Operator work summed over every ProcessBatch call of the run.
  ExecStats exec_stats;
};

struct EngineRunnerOptions {
  bool record_steps = true;
  /// Optional metrics sink. When set, the runner records `engine.*`
  /// counters (batches, modifications, operator work from ExecStats) and
  /// an `engine.batch_ms` timer per ProcessBatch call.
  obs::MetricRegistry* metrics = nullptr;
};

/// Drives `policy` over the arrival schedule: at each step, `driver`
/// applies the scheduled modifications, the policy decides which delta
/// tables to process (table order matches the maintainer's base tables),
/// and ProcessBatch executes the decision for real. At the final step the
/// view is refreshed completely; the run CHECKs that the maintainer ends
/// consistent.
EngineTrace RunOnEngine(ViewMaintainer& maintainer,
                        const ArrivalSequence& arrivals,
                        const CostModel& model, double budget,
                        Policy& policy, const ModificationDriver& driver,
                        EngineRunnerOptions options = {});

}  // namespace abivm

#endif  // ABIVM_SIM_ENGINE_RUNNER_H_
