// EngineRunner: executes a maintenance policy against the REAL storage +
// IVM engine instead of the cost-model simulator. Decisions (fullness,
// action choice) still use the modelled cost functions -- as a deployed
// system would -- while every action's actual wall-clock cost is measured.
// Comparing the two validates the simulation methodology (the paper's
// Figure 5).
//
// Failure semantics: ProcessBatchChecked is atomic (a failed batch leaves
// the view untouched), so the runner treats a failure as transient and
// retries the same batch with capped exponential backoff charged in
// SIMULATED time (deterministic -- no wall-clock sleeping). When a batch
// still fails after the attempt budget, the step DEGRADES gracefully: the
// unprocessed residue stays pending, the policy re-plans against it on
// the next step (possibly under a now-violated budget constraint), and
// the trace records the failure so sweeps can report availability
// alongside cost.
//
// Planner reuse: the runner's planner path is the policy it drives; a
// planning policy (ReplanningPolicy) holds its own PlannerWorkspace, so
// every replan within a run -- and across runs of the same policy object
// -- reuses the search arenas with bit-identical decisions.
//
// Accounting discipline: committed and attempted-but-discarded work are
// kept strictly apart. `model_cost`/`exec_stats`/`actual_ms` cover only
// batches that committed; the modelled cost of batches abandoned after
// the attempt budget goes to `abandoned_model_cost`, and the physical
// work burned by failed attempts (pipeline stages executed before the
// fault) goes to the `attempted_*` fields and `engine.attempted_*`
// counters. Nothing is double-counted and nothing vanishes.

#ifndef ABIVM_SIM_ENGINE_RUNNER_H_
#define ABIVM_SIM_ENGINE_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/arrivals.h"
#include "core/cost_model.h"
#include "core/policy.h"
#include "exec/profile.h"
#include "ivm/maintainer.h"
#include "obs/metrics.h"

namespace abivm {

/// Applies one base-table modification to the database (e.g. one random
/// supplycost update). The runner calls it d_t[i] times per step.
using ModificationDriver = std::function<void(size_t table_index)>;

/// One step of an engine run. Initialized with designated/default member
/// init only -- never positional aggregate init, which silently mis-binds
/// when fields are added.
struct EngineStepRecord {
  TimeStep t = 0;
  StateVec arrivals;
  StateVec pre_state;
  StateVec action;
  /// Modelled cost of the COMMITTED portion of the action. A batch that
  /// degraded (was abandoned after the attempt budget) is charged to
  /// `abandoned_model_cost` instead.
  double model_cost = 0.0;
  double abandoned_model_cost = 0.0;
  /// Measured wall time of committed batches.
  double actual_ms = 0.0;
  /// Measured wall time burned by failed attempts before their fault.
  double attempted_ms = 0.0;
  /// Operator work of committed batches this step.
  ExecStats stats;
  /// Operator work of failed attempts this step (discarded by the atomic
  /// rollback, but physically performed).
  ExecStats attempted_stats;
  /// Failed ProcessBatch attempts during this step.
  uint64_t failures = 0;
  /// Re-attempts after a failure (== failures unless a batch exhausted
  /// its attempt budget).
  uint64_t retries = 0;
  /// Simulated backoff charged for this step's retries.
  double backoff_ms = 0.0;
  /// True when some batch of this step was abandoned after the attempt
  /// budget; its residue stayed pending.
  bool degraded = false;
  /// Batches this step abandoned by the budget-aware rule (attempted
  /// model cost exceeded the step's cost bound) before max_attempts.
  uint64_t retry_budget_abandons = 0;
  /// True when the post-step pending state violated the fullness budget
  /// (non-final steps only). Recorded per step so a recovered trace
  /// prefix carries the same information as a live one.
  bool violation = false;
};

struct EngineTrace {
  std::vector<EngineStepRecord> steps;
  /// Modelled cost of committed work only.
  double total_model_cost = 0.0;
  /// Modelled cost of batches abandoned after the attempt budget (the
  /// step degraded; the batch never committed).
  double abandoned_model_cost = 0.0;
  double total_actual_ms = 0.0;
  /// Wall time of failed attempts (work discarded by the rollback).
  double total_attempted_ms = 0.0;
  uint64_t violations = 0;
  uint64_t action_count = 0;
  /// Failure accounting over the whole run (availability view).
  uint64_t failures = 0;
  uint64_t retries = 0;
  uint64_t degraded_steps = 0;
  /// Batches abandoned early by EngineRetryOptions::budget_aware.
  uint64_t retry_budget_abandons = 0;
  double total_backoff_ms = 0.0;
  /// False only when the forced final refresh itself degraded.
  bool ended_consistent = true;
  /// Operator work summed over every COMMITTED ProcessBatch call.
  ExecStats exec_stats;
  /// Operator work of failed attempts (== failures ProcessBatch calls).
  ExecStats attempted_exec_stats;
  uint64_t attempted_batches = 0;
  /// Per-pipeline, per-operator totals of committed batches; filled when
  /// the maintainer profiles (a metrics registry is attached via
  /// `options.metrics`, or profiling was enabled by the caller). Each
  /// profile's TotalStats() slice sums to `exec_stats` per pipeline.
  std::vector<PipelineProfile> operator_profiles;
  /// Set when a durability hook failed: the run stopped dead at
  /// `aborted_at` (modelling a crash), the trace covers only the steps
  /// executed before it, and no end-of-run consistency check was made.
  /// Callers recover from disk (ckpt::RecoverFromDir) and resume.
  bool aborted = false;
  TimeStep aborted_at = 0;
  std::string abort_reason;
};

/// Durability callbacks the runner invokes at the three commit points of
/// a step. Implemented by ckpt::DurabilityManager (WAL + checkpoints);
/// declared here so abivm_sim does not depend on the ckpt layer. A
/// non-OK return aborts the run immediately (see EngineTrace::aborted) --
/// an injected durability fault models a crash, not a retryable error.
class EngineDurabilityHooks {
 public:
  virtual ~EngineDurabilityHooks() = default;

  /// After the step's arrivals were applied and its action decided,
  /// before any batch executes. `planned` has t / arrivals / pre_state /
  /// action filled; `forced` marks the horizon's forced final refresh
  /// (whose action did not come from the policy).
  virtual Status OnStepPlanned(const EngineStepRecord& planned,
                               bool forced) = 0;

  /// After each successfully committed batch (k modifications of base
  /// table `table` at step t).
  virtual Status OnBatchCommitted(TimeStep t, size_t table, size_t k,
                                  const BatchResult& result) = 0;

  /// After the step's record is complete (including the violation flag).
  virtual Status OnStepEnd(const EngineStepRecord& record) = 0;
};

/// Where a recovered run resumes. Produced by ckpt::RecoverFromDir after
/// it has restored the database/maintainer image and replayed the WAL;
/// consumed by RunOnEngine via EngineRunnerOptions::resume.
struct EngineResumeState {
  /// First step the resumed run executes.
  TimeStep first_step = 0;
  /// True when `first_step` was already planned pre-crash (its arrivals
  /// are in the recovered database and its action is fixed): the runner
  /// must not re-apply the driver or re-consult the policy for it.
  bool mid_step = false;
  /// Committed prefix of the mid step (t/arrivals/pre_state/action plus
  /// the accounting of batches that committed before the crash).
  EngineStepRecord partial;
  /// Per-table: 1 when that table's batch of the mid step committed
  /// pre-crash (the resumed step skips it).
  std::vector<uint8_t> batch_committed;
};

/// Retry discipline for failed batches. Backoff for attempt a (0-based
/// count of prior failures of that batch) is
/// min(cap_ms, base_ms * multiplier^a), charged in simulated time.
struct EngineRetryOptions {
  /// Total tries per batch, including the first (1 = never retry).
  size_t max_attempts = 4;
  double backoff_base_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 8.0;
  /// Optional budget-aware give-up rule tying availability to the paper's
  /// cost model: when true, a failing batch is abandoned as soon as the
  /// step's accumulated attempted (failed-and-discarded) model cost
  /// exceeds the step's committed-cost bound -- the response-time budget
  /// C that caps what any step is allowed to spend. Retrying past that
  /// point would burn more modelled work on one step than a successful
  /// step may cost at all. Abandons triggered by this rule (rather than
  /// by max_attempts) are counted in `retry_budget_abandons` and the
  /// `engine.retry_budget_abandons` counter; max_attempts still applies
  /// as the outer cap.
  bool budget_aware = false;
};

struct EngineRunnerOptions {
  bool record_steps = true;
  EngineRetryOptions retry;
  /// Optional metrics sink. When set, the runner records `engine.*`
  /// counters (batches, modifications, operator work from ExecStats,
  /// failures/retries/degraded steps, attempted_* for discarded work),
  /// an `engine.batch_ms` timer per committed ProcessBatch call, an
  /// `engine.attempted_batch_ms` timer per failed attempt, and attaches
  /// the registry to the maintainer for the duration of the run so every
  /// pipeline stage records its interned `ivm.op.*` timer.
  obs::MetricRegistry* metrics = nullptr;
  /// Optional durability hooks (WAL + checkpoints). Not owned.
  EngineDurabilityHooks* durability = nullptr;
  /// Optional resume point from a recovery. When set, the runner starts
  /// at resume->first_step with the policy ALREADY warmed by the
  /// recovery's decision replay (Reset is not called again), and skips
  /// the start-of-run consistency check (a recovered view legitimately
  /// has pending deltas). Not owned.
  const EngineResumeState* resume = nullptr;
};

/// Drives `policy` over the arrival schedule: at each step, `driver`
/// applies the scheduled modifications, the policy decides which delta
/// tables to process (table order matches the maintainer's base tables),
/// and ProcessBatchChecked executes the decision for real, with
/// retry/degrade semantics as above. At the final step the view is
/// refreshed completely; the run CHECKs that the maintainer ends
/// consistent unless some step degraded (then `ended_consistent` reports
/// the outcome instead).
EngineTrace RunOnEngine(ViewMaintainer& maintainer,
                        const ArrivalSequence& arrivals,
                        const CostModel& model, double budget,
                        Policy& policy, const ModificationDriver& driver,
                        EngineRunnerOptions options = {});

}  // namespace abivm

#endif  // ABIVM_SIM_ENGINE_RUNNER_H_
