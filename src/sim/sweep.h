// Parallel scenario-sweep engine: runs independent simulation/planning
// jobs (scenario x policy x budget points) across a worker pool. Each job
// owns a private MetricRegistry and its own Policy instance (policies are
// stateful), while read-only inputs -- ProblemInstance, CostModel -- are
// shared by const reference. Results come back in job order regardless of
// thread count, so a sweep is deterministic: running with --threads=1 and
// --threads=N yields bit-identical numbers.

#ifndef ABIVM_SIM_SWEEP_H_
#define ABIVM_SIM_SWEEP_H_

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/astar.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace abivm {

/// Outcome of one sweep job, in a reporting-friendly shape.
struct SweepJobResult {
  /// Which experiment point this is (e.g. "uniform" / "T=400").
  std::string scenario;
  /// Which treatment ran on it (e.g. "ONLINE" / "ADAPT k=10").
  std::string label;

  /// Headline numbers: meaning depends on the job kind (simulated total
  /// cost for Simulate jobs, optimal plan cost for plan jobs).
  double total_cost = 0.0;
  uint64_t violations = 0;
  uint64_t action_count = 0;

  /// Wall-clock of the whole job, measured by the sweep engine.
  double wall_ms = 0.0;

  /// Everything the job recorded into its private registry (planner
  /// counters, policy stats, sim spans, ...).
  obs::MetricsSnapshot metrics;

  /// Driver-specific extra values (e.g. fig05's actual engine ms), keyed
  /// by name; serialized alongside the headline numbers.
  std::map<std::string, double> values;
};

/// One unit of work. `run` executes on a worker thread: it must only
/// touch its own arguments plus whatever the job closure owns or shares
/// read-only. The engine pre-fills scenario/label in the result and
/// stamps wall_ms and the metrics snapshot afterwards.
struct SweepJob {
  std::string scenario;
  std::string label;
  /// Relative expected runtime used for cost-aware scheduling: the engine
  /// dispatches jobs in descending expected_cost so the longest job
  /// starts first and cannot become the tail when thread count approaches
  /// job count. Any monotone proxy works; the Make*Job helpers use the
  /// instance's horizon length. 0 (the default) means "unknown" and
  /// preserves submission order among such jobs. Scheduling only affects
  /// dispatch order -- results always come back in submission order with
  /// bit-identical contents.
  double expected_cost = 0.0;
  std::function<void(obs::MetricRegistry&, SweepJobResult&)> run;
};

/// Creates a fresh Policy per job so concurrent jobs never share policy
/// state. Must be safe to call from any worker thread.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

struct SweepOptions {
  /// Worker threads; 0 means ThreadPool::DefaultThreads().
  size_t threads = 0;
};

/// Runs every job (dispatch order is longest-expected-first by
/// SweepJob::expected_cost, results in job order). Jobs must not throw; a
/// CHECK failure inside a job aborts the sweep, matching the repo-wide
/// error discipline.
std::vector<SweepJobResult> RunSweep(const std::vector<SweepJob>& jobs,
                                     const SweepOptions& options = {});

/// Job that runs Simulate(instance, *factory(), ...) with metrics wired
/// in and exports the policy's own counters afterwards. `instance` is
/// captured by reference and must outlive the RunSweep call.
SweepJob MakeSimulateJob(std::string scenario, std::string label,
                         const ProblemInstance& instance,
                         PolicyFactory factory,
                         SimulatorOptions base_options = {});

/// Job that runs FindOptimalLgmPlan(instance, ...) with metrics wired in;
/// total_cost is the optimal plan cost and action_count the number of
/// non-zero plan actions. `instance` must outlive the RunSweep call.
/// The job closure owns a PlannerWorkspace, so re-running the same job
/// (repeated sweeps, bench reps) reuses the planner's arenas; results are
/// bit-identical regardless of reuse.
SweepJob MakePlanJob(std::string scenario, std::string label,
                     const ProblemInstance& instance,
                     AStarOptions base_options = {});

/// Serializes sweep results as a JSON array of per-job objects:
///   [{"scenario":..,"label":..,"total_cost":..,"violations":..,
///     "action_count":..,"wall_ms":..,"values":{...},"metrics":{...}}]
void WriteSweepJson(std::ostream& os,
                    const std::vector<SweepJobResult>& results);

}  // namespace abivm

#endif  // ABIVM_SIM_SWEEP_H_
