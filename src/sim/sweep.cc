#include "sim/sweep.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/astar_workspace.h"
#include "obs/export.h"
#include "obs/json.h"

namespace abivm {

std::vector<SweepJobResult> RunSweep(const std::vector<SweepJob>& jobs,
                                     const SweepOptions& options) {
  const size_t threads =
      options.threads == 0 ? ThreadPool::DefaultThreads() : options.threads;
  std::vector<SweepJobResult> results(jobs.size());

  // Cost-aware scheduling: dispatch longest-expected-first so that when
  // thread count approaches job count, the most expensive job is never
  // the one that starts last and stretches the tail. stable_sort keeps
  // submission order among equal-cost jobs, so dispatch is deterministic;
  // each job still writes results[its submission index], so the returned
  // vector (and parallel==sequential bit-identity) is unaffected.
  std::vector<size_t> dispatch(jobs.size());
  std::iota(dispatch.begin(), dispatch.end(), size_t{0});
  std::stable_sort(dispatch.begin(), dispatch.end(),
                   [&jobs](size_t a, size_t b) {
                     return jobs[a].expected_cost > jobs[b].expected_cost;
                   });

  ThreadPool pool(threads);
  for (const size_t i : dispatch) {
    const SweepJob& job = jobs[i];
    SweepJobResult& result = results[i];
    pool.Submit([&job, &result] {
      ABIVM_CHECK_MSG(static_cast<bool>(job.run),
                      "sweep job '" << job.scenario << "/" << job.label
                                    << "' has no run function");
      result.scenario = job.scenario;
      result.label = job.label;
      obs::MetricRegistry registry;
      const Stopwatch watch;
      job.run(registry, result);
      result.wall_ms = watch.ElapsedMs();
      result.metrics = registry.Snapshot();
    });
  }
  pool.Wait();
  return results;
}

SweepJob MakeSimulateJob(std::string scenario, std::string label,
                         const ProblemInstance& instance,
                         PolicyFactory factory,
                         SimulatorOptions base_options) {
  SweepJob job;
  job.scenario = std::move(scenario);
  job.label = std::move(label);
  // Simulation work scales with the number of steps; the horizon is a
  // good-enough relative cost proxy for longest-first dispatch.
  job.expected_cost = static_cast<double>(instance.horizon() + 1);
  job.run = [&instance, factory = std::move(factory),
             base_options](obs::MetricRegistry& registry,
                           SweepJobResult& result) {
    std::unique_ptr<Policy> policy = factory();
    SimulatorOptions options = base_options;
    options.metrics = &registry;
    const Trace trace = Simulate(instance, *policy, options);
    policy->ExportMetrics(registry);
    result.total_cost = trace.total_cost;
    result.violations = trace.violations;
    result.action_count = trace.action_count;
  };
  return job;
}

SweepJob MakePlanJob(std::string scenario, std::string label,
                     const ProblemInstance& instance,
                     AStarOptions base_options) {
  SweepJob job;
  job.scenario = std::move(scenario);
  job.label = std::move(label);
  // A* search size grows superlinearly with the horizon; the horizon is
  // still a monotone proxy, which is all longest-first dispatch needs.
  job.expected_cost = static_cast<double>(instance.horizon() + 1);
  // Each job closure owns a planner workspace: a job that runs more than
  // once (repeated sweeps over the same job vector, bench reps) reuses
  // the arenas its first search grew. shared_ptr only because
  // std::function requires copyable closures; the workspace is never
  // shared across jobs, so concurrent sweep workers stay isolated.
  auto workspace = std::make_shared<PlannerWorkspace>();
  job.run = [&instance, base_options,
             workspace](obs::MetricRegistry& registry,
                        SweepJobResult& result) {
    AStarOptions options = base_options;
    options.metrics = &registry;
    const PlanSearchResult search =
        FindOptimalLgmPlan(instance, options, *workspace);
    result.total_cost = search.cost;
    result.action_count = search.plan.actions().size();
  };
  return job;
}

void WriteSweepJson(std::ostream& os,
                    const std::vector<SweepJobResult>& results) {
  obs::JsonWriter writer(os);
  writer.BeginArray();
  for (const SweepJobResult& result : results) {
    writer.BeginObject();
    writer.Field("scenario", result.scenario);
    writer.Field("label", result.label);
    writer.Field("total_cost", result.total_cost);
    writer.Field("violations", result.violations);
    writer.Field("action_count", result.action_count);
    writer.Field("wall_ms", result.wall_ms);
    if (!result.values.empty()) {
      writer.Key("values");
      writer.BeginObject();
      for (const auto& [name, value] : result.values) {
        writer.Field(name, value);
      }
      writer.EndObject();
    }
    if (!result.metrics.empty()) {
      writer.Key("metrics");
      WriteSnapshotJson(writer, result.metrics);
    }
    writer.EndObject();
  }
  writer.EndArray();
}

}  // namespace abivm
