#pragma once

// Typed veneer over `SweepJobResult.values`.
//
// The `values` map is intentionally schemaless so drivers can attach
// whatever extras their report needs, but every consumer re-typing the
// key string is how silent mismatches happen ("attempted_ms" written,
// "attempt_ms" read, zero reported). This header is the single place
// where known keys live: each key is an interned `ValueKey` whose
// backing `std::string` is built once, so hot accumulation loops do not
// re-allocate a temporary string per map access, and readers/writers
// share the exact same spelling by construction.
//
// New driver extras should be added here (with a one-line meaning and
// unit) rather than spelled inline at the use site.

#include <string>

#include "sim/sweep.h"

namespace abivm {
namespace sweep_values {

/// An interned key into `SweepJobResult.values`. Construction builds the
/// backing string once; all accesses reuse it. Composed keys (see
/// `OpMs`) are regular `ValueKey`s built on the fly.
class ValueKey {
 public:
  explicit ValueKey(std::string name) : name_(std::move(name)) {}

  const std::string& str() const { return name_; }

  void Set(SweepJobResult& result, double value) const {
    result.values[name_] = value;
  }
  void Add(SweepJobResult& result, double value) const {
    result.values[name_] += value;
  }
  /// Read a key the driver is known to have written; throws (map::at)
  /// on absence, which is the right failure mode for report code that
  /// would otherwise print a silent zero.
  double Get(const SweepJobResult& result) const {
    return result.values.at(name_);
  }
  double GetOr(const SweepJobResult& result, double fallback) const {
    const auto it = result.values.find(name_);
    return it == result.values.end() ? fallback : it->second;
  }

 private:
  std::string name_;
};

// --- Engine-replay extras (fig05 and friends) ---------------------------

/// Measured wall-clock of all committed batches, ms.
inline const ValueKey kActualMs{"actual_ms"};
/// Model cost of work abandoned by failed/degraded steps.
inline const ValueKey kAbandonedModelCost{"abandoned_model_cost"};
/// Wall-clock including failed attempts, ms.
inline const ValueKey kAttemptedMs{"attempted_ms"};
/// Batches attempted (committed + failed), count.
inline const ValueKey kAttemptedBatches{"attempted_batches"};

/// Per-operator wall total for one pipeline stage, ms. Composed as
/// "op_ms.<pipeline>.<stage-slug>"; build once per stage when
/// accumulating in a loop.
inline ValueKey OpMs(const std::string& pipeline, const std::string& slug) {
  return ValueKey("op_ms." + pipeline + "." + slug);
}

// --- Planner-vs-oracle extras (ablation benches) ------------------------

/// Exhaustive-oracle optimal plan cost (same instance as the headline
/// `total_cost`, which holds the LGM planner's cost).
inline const ValueKey kOptCost{"opt_cost"};

// --- Fault/robustness extras (engine fault sweeps) ----------------------

/// Failed batch attempts, count.
inline const ValueKey kFailures{"failures"};
/// Retries after failure, count.
inline const ValueKey kRetries{"retries"};
/// Steps that fell back to a degraded action, count.
inline const ValueKey kDegradedSteps{"degraded_steps"};
/// Simulated retry backoff, ms.
inline const ValueKey kBackoffMs{"backoff_ms"};
/// 1.0 if the final view matched the recompute oracle, else 0.0.
inline const ValueKey kEndedConsistent{"ended_consistent"};

// --- Durability/recovery extras (ckpt drivers) --------------------------

/// Checkpoints published during the run, count.
inline const ValueKey kCheckpoints{"checkpoints"};
/// WAL records appended, count.
inline const ValueKey kWalRecords{"wal_records"};
/// WAL records replayed by recovery, count.
inline const ValueKey kReplayedRecords{"replayed_records"};
/// Batches re-executed by recovery replay, count.
inline const ValueKey kReplayedBatches{"replayed_batches"};
/// Dead row versions reclaimed by watermark-driven vacuum, count.
inline const ValueKey kGcVersionsReclaimed{"gc_versions_reclaimed"};

// --- Serving extras (ViewServer load drivers) ---------------------------

/// Bounded-staleness snapshot reads served, count.
inline const ValueKey kServeStaleReads{"serve_stale_reads"};
/// On-demand fresh reads served, count.
inline const ValueKey kServeFreshReads{"serve_fresh_reads"};
/// Coalesced group flushes run for fresh reads, count (the gap to
/// `serve_fresh_reads` is the coalescing win).
inline const ValueKey kServeFlushes{"serve_flushes"};
/// Snapshot epochs published, count.
inline const ValueKey kServePublishes{"serve_publishes"};
/// Ingest ops rejected by backpressure, count.
inline const ValueKey kServeIngestRejected{"serve_ingest_rejected"};
/// Fresh-read latency p99, ms.
inline const ValueKey kServeFreshP99Ms{"serve_fresh_p99_ms"};

}  // namespace sweep_values
}  // namespace abivm
