// Aligned-table and CSV printers shared by the benchmark harnesses, so
// each bench binary emits the same rows/series the paper's figures plot.

#ifndef ABIVM_SIM_REPORT_H_
#define ABIVM_SIM_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace abivm {

/// Collects rows of string cells and prints them with aligned columns
/// (and optionally as CSV).
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);

  void PrintAligned(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abivm

#endif  // ABIVM_SIM_REPORT_H_
