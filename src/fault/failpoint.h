// Deterministic fault injection: named failpoints in the spirit of
// RocksDB's SyncPoint and LeanStore's crash-testing hooks.
//
// A failpoint is a named site in production code that can be armed by a
// test or bench driver to return an injected error Status. Design rules:
//   * Disarmed cost is ONE relaxed atomic load per site visit (no lock,
//     no counter bump). Release builds can compile sites out entirely
//     with -DABIVM_DISABLE_FAILPOINTS.
//   * Arming is deterministic: one-shot trigger on the Nth hit, trigger
//     on every hit, or a Bernoulli trigger driven by a seeded PRNG --
//     never wall-clock or global randomness.
//   * The registry is THREAD-LOCAL: each thread owns an independent set
//     of failpoint states and counters. Arming in a test thread cannot
//     perturb concurrent sweep workers, which is what makes
//     parallel==sequential bit-identity hold even for fault-injected
//     engine runs (each sweep job arms inside its own closure, on the
//     worker thread that executes it).
//   * Hit/trigger counters (counted while armed) export into an
//     obs::MetricRegistry as `fault.hits.<site>` / `fault.triggers.<site>`.
//
// The catalog of wired site names lives in fault/sites.h.

#ifndef ABIVM_FAULT_FAILPOINT_H_
#define ABIVM_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace abivm::fault {

/// One named injection site. Owned by a FailpointRegistry; never moves,
/// so call sites may cache a reference.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// The site check. Disarmed: a single relaxed atomic load, then OK.
  /// Armed: counts the hit and evaluates the armed mode; a trigger
  /// returns Status::Internal("injected fault at ...").
  Status Check() {
    if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
    return CheckArmed();
  }

  /// Triggers once on the (skip_hits+1)-th hit, then disarms itself.
  void ArmOnce(uint64_t skip_hits = 0);
  /// Triggers on every hit until disarmed.
  void ArmAlways();
  /// Triggers each hit with probability `p`, drawn from a PRNG seeded
  /// with `seed` at arm time (deterministic trigger schedule).
  void ArmProbability(double p, uint64_t seed);
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  /// Site visits while armed (disarmed visits are not counted -- the
  /// disarmed fast path touches nothing but the armed flag).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Injected failures returned from Check().
  uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  enum class Mode { kOnce, kAlways, kProbability };

  Status CheckArmed();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> triggers_{0};
  // Arming state; guarded by mu_ (Check re-reads armed_ under the lock).
  std::mutex mu_;
  Mode mode_ = Mode::kOnce;
  uint64_t skip_remaining_ = 0;
  double probability_ = 0.0;
  Rng rng_{0};
};

/// Thread-local registry of failpoints. Get() interns a site by name;
/// the returned reference stays valid for the thread's lifetime.
class FailpointRegistry {
 public:
  /// The calling thread's registry (created on first use).
  static FailpointRegistry& ThreadLocal();

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  Failpoint& Get(std::string_view name);

  /// Names interned so far (sites visited or armed on this thread), in
  /// lexicographic order. The full compiled-in catalog is
  /// fault::kAllFailpointSites in fault/sites.h.
  std::vector<std::string> RegisteredNames() const;

  void DisarmAll();
  void ResetAllCounters();

  /// Exports `fault.hits.<site>` / `fault.triggers.<site>` counters for
  /// every interned site with a non-zero count.
  void ExportMetrics(obs::MetricRegistry& metrics) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

/// RAII armer: arms a failpoint on the calling thread's registry and
/// disarms it (and clears its counters) on destruction.
class ScopedFailpoint {
 public:
  static ScopedFailpoint Once(std::string_view site, uint64_t skip_hits = 0);
  static ScopedFailpoint Always(std::string_view site);
  static ScopedFailpoint Probability(std::string_view site, double p,
                                     uint64_t seed);

  ScopedFailpoint(ScopedFailpoint&& other) noexcept
      : point_(other.point_) {
    other.point_ = nullptr;
  }
  ScopedFailpoint& operator=(ScopedFailpoint&&) = delete;
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  ~ScopedFailpoint() {
    if (point_ != nullptr) {
      point_->Disarm();
      point_->ResetCounters();
    }
  }

  Failpoint& point() { return *point_; }

 private:
  explicit ScopedFailpoint(Failpoint* point) : point_(point) {}

  Failpoint* point_;
};

}  // namespace abivm::fault

// The site macro used by production code. Evaluates to a `return status`
// when the site triggers, so it may only appear in functions returning
// Status or Result<T>. The interned Failpoint reference is cached per
// call site per thread (registries are thread-local, so the cache is
// never stale).
#ifndef ABIVM_DISABLE_FAILPOINTS
#define ABIVM_FAULT_POINT(site)                                           \
  do {                                                                    \
    thread_local ::abivm::fault::Failpoint& abivm_fault_fp_ =             \
        ::abivm::fault::FailpointRegistry::ThreadLocal().Get(site);       \
    ::abivm::Status abivm_fault_status_ = abivm_fault_fp_.Check();        \
    if (!abivm_fault_status_.ok()) return abivm_fault_status_;            \
  } while (0)
#else
#define ABIVM_FAULT_POINT(site) \
  do {                          \
  } while (0)
#endif

#endif  // ABIVM_FAULT_FAILPOINT_H_
