#include "fault/failpoint.h"

namespace abivm::fault {

void Failpoint::ArmOnce(uint64_t skip_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kOnce;
  skip_remaining_ = skip_hits;
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::ArmAlways() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kAlways;
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::ArmProbability(double p, uint64_t seed) {
  ABIVM_CHECK_MSG(p >= 0.0 && p <= 1.0,
                  "failpoint probability " << p << " out of [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kProbability;
  probability_ = p;
  rng_ = Rng(seed);
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

void Failpoint::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  triggers_.store(0, std::memory_order_relaxed);
}

Status Failpoint::CheckArmed() {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock: a concurrent Disarm may have won.
  if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
  hits_.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  switch (mode_) {
    case Mode::kOnce:
      if (skip_remaining_ == 0) {
        fire = true;
        armed_.store(false, std::memory_order_relaxed);  // one-shot
      } else {
        --skip_remaining_;
      }
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kProbability:
      fire = rng_.Bernoulli(probability_);
      break;
  }
  if (!fire) return Status::Ok();
  triggers_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal("injected fault at failpoint '" + name_ + "'");
}

FailpointRegistry& FailpointRegistry::ThreadLocal() {
  thread_local FailpointRegistry registry;
  return registry;
}

Failpoint& FailpointRegistry::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<std::string> FailpointRegistry::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) point->Disarm();
}

void FailpointRegistry::ResetAllCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) point->ResetCounters();
}

void FailpointRegistry::ExportMetrics(obs::MetricRegistry& metrics) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, point] : points_) {
    if (point->hits() > 0) {
      metrics.counter("fault.hits." + name).Add(point->hits());
    }
    if (point->triggers() > 0) {
      metrics.counter("fault.triggers." + name).Add(point->triggers());
    }
  }
}

ScopedFailpoint ScopedFailpoint::Once(std::string_view site,
                                      uint64_t skip_hits) {
  Failpoint& point = FailpointRegistry::ThreadLocal().Get(site);
  point.ArmOnce(skip_hits);
  return ScopedFailpoint(&point);
}

ScopedFailpoint ScopedFailpoint::Always(std::string_view site) {
  Failpoint& point = FailpointRegistry::ThreadLocal().Get(site);
  point.ArmAlways();
  return ScopedFailpoint(&point);
}

ScopedFailpoint ScopedFailpoint::Probability(std::string_view site, double p,
                                             uint64_t seed) {
  Failpoint& point = FailpointRegistry::ThreadLocal().Get(site);
  point.ArmProbability(p, seed);
  return ScopedFailpoint(&point);
}

}  // namespace abivm::fault
