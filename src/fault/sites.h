// Catalog of every failpoint site wired into the engine. Tests iterate
// AllFailpointSites() to torture each site in turn; keep this list in
// sync when adding an ABIVM_FAULT_POINT to production code.

#ifndef ABIVM_FAULT_SITES_H_
#define ABIVM_FAULT_SITES_H_

#include <array>

namespace abivm::fault {

// Storage layer: logged base-table modifications and delta-log reads.
inline constexpr const char* kFpStorageApplyInsert = "storage.apply_insert";
inline constexpr const char* kFpStorageApplyDelete = "storage.apply_delete";
inline constexpr const char* kFpStorageApplyUpdate = "storage.apply_update";
inline constexpr const char* kFpStorageDeltaLogRead =
    "storage.delta_log_read";
// Fired by the apply paths when an inserting modification is about to
// grow (rehash) a flat hash index -- deterministically BEFORE any table
// or delta-log mutation, so an injected fault leaves the table exactly
// as it was (the torture loop verifies atomicity at the growth edge).
inline constexpr const char* kFpFlatIndexGrow = "storage.flat_index_grow";

// Exec layer: pipeline operators (hit per scan / per join step).
inline constexpr const char* kFpExecScan = "exec.scan";
inline constexpr const char* kFpExecIndexJoin = "exec.index_join";
inline constexpr const char* kFpExecHashJoin = "exec.hash_join";
// Fired on the caller thread before a partitioned scan-side probe
// dispatches work to the pool (failpoint registries are thread-local, so
// the site must trip before any worker runs).
inline constexpr const char* kFpPartitionedProbe = "exec.partitioned_probe";

// IVM layer: batch maintenance. `ivm.apply_state` sits after the delta
// pipeline, before any state mutation; `ivm.commit` is the last site
// before the atomic commit of state + watermarks (non-dry-run only).
inline constexpr const char* kFpIvmApplyState = "ivm.apply_state";
inline constexpr const char* kFpIvmCommit = "ivm.commit";

// Durability layer (src/ckpt/): every step of the checkpoint write
// protocol (payload write, fsync, temp->final rename, manifest swap),
// the per-record WAL append, the per-record recovery replay, and the
// per-table watermark-driven vacuum pass. Each site fires BEFORE the
// corresponding side effect, so an injected fault models a crash that
// lost the step entirely -- the kill-and-restart torture loop recovers
// from disk and must land on the last durable state.
inline constexpr const char* kFpCkptWrite = "ckpt.write";
inline constexpr const char* kFpCkptFsync = "ckpt.fsync";
inline constexpr const char* kFpCkptRename = "ckpt.rename";
inline constexpr const char* kFpCkptManifest = "ckpt.manifest";
// Fired before a delta (incremental) image is written -- the chained
// publish adds this site on top of the write/fsync/rename/manifest
// protocol sites, which delta publishes carry too.
inline constexpr const char* kFpCkptDelta = "ckpt.delta";
inline constexpr const char* kFpLogAppend = "log.append";
// Fired per WAL segment before its unlink during the post-checkpoint
// trim pass, so a kill mid-trim leaves a partially-trimmed (but still
// contiguous) segment suffix.
inline constexpr const char* kFpWalTrim = "wal.trim";
inline constexpr const char* kFpRecoveryReplay = "recovery.replay";
inline constexpr const char* kFpGcVacuum = "gc.vacuum";

// Serving layer (src/serve/). `serve.enqueue` fires on the PRODUCER
// thread inside ViewServer::Ingest, before the op reaches the queue (an
// injected fault models admission failure; the queue is untouched).
// `serve.flush` fires on the MAINTENANCE thread at the start of a
// coalesced fresh-read flush: a trigger fails every fresh reader queued
// behind that flush while stale reads keep serving the last published
// epoch. `serve.publish` fires before a snapshot publication: a trigger
// skips that publication (the epoch simply stays stale until the next
// commit publishes). Registries are thread-local, so tests arm the two
// maintenance-side sites via ViewServer::RunOnMaintenanceThread.
inline constexpr const char* kFpServeEnqueue = "serve.enqueue";
inline constexpr const char* kFpServeFlush = "serve.flush";
inline constexpr const char* kFpServePublish = "serve.publish";

/// Every wired site, for exhaustive fault-torture loops.
inline constexpr std::array<const char*, 23> kAllFailpointSites = {
    kFpStorageApplyInsert,  kFpStorageApplyDelete, kFpStorageApplyUpdate,
    kFpStorageDeltaLogRead, kFpFlatIndexGrow,      kFpExecScan,
    kFpExecIndexJoin,       kFpExecHashJoin,       kFpPartitionedProbe,
    kFpIvmApplyState,       kFpIvmCommit,          kFpCkptWrite,
    kFpCkptFsync,           kFpCkptRename,         kFpCkptManifest,
    kFpCkptDelta,           kFpLogAppend,          kFpWalTrim,
    kFpRecoveryReplay,      kFpGcVacuum,           kFpServeEnqueue,
    kFpServeFlush,          kFpServePublish,
};

/// The serving-layer subset, for the serve torture loop.
inline constexpr std::array<const char*, 3> kServeFailpointSites = {
    kFpServeEnqueue,
    kFpServeFlush,
    kFpServePublish,
};

/// The durability-protocol subset (checkpoint write, WAL append + trim,
/// recovery replay, GC), for the crash/recover/resume torture loop.
inline constexpr std::array<const char*, 9> kDurabilityFailpointSites = {
    kFpCkptWrite,  kFpCkptFsync,      kFpCkptRename,
    kFpCkptManifest, kFpCkptDelta,    kFpLogAppend,
    kFpWalTrim,    kFpRecoveryReplay, kFpGcVacuum,
};

}  // namespace abivm::fault

#endif  // ABIVM_FAULT_SITES_H_
