// Catalog of every failpoint site wired into the engine. Tests iterate
// AllFailpointSites() to torture each site in turn; keep this list in
// sync when adding an ABIVM_FAULT_POINT to production code.

#ifndef ABIVM_FAULT_SITES_H_
#define ABIVM_FAULT_SITES_H_

#include <array>

namespace abivm::fault {

// Storage layer: logged base-table modifications and delta-log reads.
inline constexpr const char* kFpStorageApplyInsert = "storage.apply_insert";
inline constexpr const char* kFpStorageApplyDelete = "storage.apply_delete";
inline constexpr const char* kFpStorageApplyUpdate = "storage.apply_update";
inline constexpr const char* kFpStorageDeltaLogRead =
    "storage.delta_log_read";

// Exec layer: pipeline operators (hit per scan / per join step).
inline constexpr const char* kFpExecScan = "exec.scan";
inline constexpr const char* kFpExecIndexJoin = "exec.index_join";
inline constexpr const char* kFpExecHashJoin = "exec.hash_join";

// IVM layer: batch maintenance. `ivm.apply_state` sits after the delta
// pipeline, before any state mutation; `ivm.commit` is the last site
// before the atomic commit of state + watermarks (non-dry-run only).
inline constexpr const char* kFpIvmApplyState = "ivm.apply_state";
inline constexpr const char* kFpIvmCommit = "ivm.commit";

/// Every wired site, for exhaustive fault-torture loops.
inline constexpr std::array<const char*, 9> kAllFailpointSites = {
    kFpStorageApplyInsert, kFpStorageApplyDelete, kFpStorageApplyUpdate,
    kFpStorageDeltaLogRead, kFpExecScan,          kFpExecIndexJoin,
    kFpExecHashJoin,        kFpIvmApplyState,     kFpIvmCommit,
};

}  // namespace abivm::fault

#endif  // ABIVM_FAULT_SITES_H_
