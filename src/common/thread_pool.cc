#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace abivm {

ThreadPool::ThreadPool(size_t threads) {
  ABIVM_CHECK_GE(threads, 1u);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ABIVM_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ABIVM_CHECK_MSG(!shutting_down_, "Submit after ThreadPool destruction");
    queue_.push_back(std::move(task));
    ++in_flight_;
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      active_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_workers_.fetch_sub(1, std::memory_order_relaxed);
      --in_flight_;
      if (in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace abivm
