// Small numeric fitting helpers used by cost-model calibration.

#ifndef ABIVM_COMMON_FIT_H_
#define ABIVM_COMMON_FIT_H_

#include <cstddef>
#include <vector>

namespace abivm {

/// Result of an ordinary-least-squares fit y ~ slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect fit).
  double r_squared = 0.0;
};

/// Ordinary least squares over paired samples. Requires xs.size() ==
/// ys.size() and at least two distinct x values.
LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

/// Median of a sample (sorting a copy); empty input returns 0.
double Median(std::vector<double> values);

}  // namespace abivm

#endif  // ABIVM_COMMON_FIT_H_
