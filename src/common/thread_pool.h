// Fixed-size worker pool for CPU-bound fan-out (the sweep engine's
// substrate). Deliberately minimal: submit void() tasks, wait for all of
// them; no futures, no cancellation, no work stealing.

#ifndef ABIVM_COMMON_THREAD_POOL_H_
#define ABIVM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abivm {

/// `threads` workers started at construction; destruction drains the
/// queue (waits for every submitted task) and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker frees up. Tasks must not
  /// throw (the pool aborts on escaped exceptions, matching the repo's
  /// CHECK-based error discipline).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Safe to call
  /// repeatedly and to submit again afterwards.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

  /// Saturation observables, updated with relaxed stores inside the
  /// operations that already hold the queue mutex (so the cost is two
  /// atomic writes per task transition) and readable lock-free from any
  /// thread. obs/pool_gauges.h samples them into `pool.*` gauges so
  /// serving saturation is observable without taking the pool's lock.
  /// Tasks submitted but not yet picked up by a worker.
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Workers currently executing a task.
  size_t active_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }
  /// Lifetime count of tasks submitted (monotone).
  uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

  /// The pool size to use when the caller passes 0 ("auto"): the
  /// hardware concurrency, at least 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> active_workers_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
  std::vector<std::thread> workers_;
};

}  // namespace abivm

#endif  // ABIVM_COMMON_THREAD_POOL_H_
