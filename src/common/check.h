// Lightweight invariant-checking macros used throughout ABIVM.
//
// ABIVM_CHECK* macros are always on (they guard data-structure invariants
// whose violation would silently corrupt results); ABIVM_DCHECK* compiles
// out in NDEBUG builds and is used on hot paths.

#ifndef ABIVM_COMMON_CHECK_H_
#define ABIVM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace abivm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "ABIVM_CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

}  // namespace abivm::internal

#define ABIVM_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::abivm::internal::CheckFailed(__FILE__, __LINE__, #expr, "");  \
    }                                                                 \
  } while (0)

#define ABIVM_CHECK_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream abivm_oss_;                                  \
      abivm_oss_ << "(" << msg << ")";                                \
      ::abivm::internal::CheckFailed(__FILE__, __LINE__, #expr,       \
                                     abivm_oss_.str());               \
    }                                                                 \
  } while (0)

#define ABIVM_CHECK_OP(op, a, b)                                      \
  do {                                                                \
    if (!((a)op(b))) {                                                \
      std::ostringstream abivm_oss_;                                  \
      abivm_oss_ << "(" << (a) << " vs " << (b) << ")";               \
      ::abivm::internal::CheckFailed(__FILE__, __LINE__,              \
                                     #a " " #op " " #b,               \
                                     abivm_oss_.str());               \
    }                                                                 \
  } while (0)

#define ABIVM_CHECK_EQ(a, b) ABIVM_CHECK_OP(==, a, b)
#define ABIVM_CHECK_NE(a, b) ABIVM_CHECK_OP(!=, a, b)
#define ABIVM_CHECK_LT(a, b) ABIVM_CHECK_OP(<, a, b)
#define ABIVM_CHECK_LE(a, b) ABIVM_CHECK_OP(<=, a, b)
#define ABIVM_CHECK_GT(a, b) ABIVM_CHECK_OP(>, a, b)
#define ABIVM_CHECK_GE(a, b) ABIVM_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define ABIVM_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define ABIVM_DCHECK(expr) ABIVM_CHECK(expr)
#endif

#endif  // ABIVM_COMMON_CHECK_H_
