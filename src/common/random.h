// Deterministic pseudo-random number generation.
//
// All randomness in ABIVM (data generation, update streams, test instance
// generation) flows through Rng so experiments are reproducible from a
// seed. The core generator is xoshiro256**, seeded via SplitMix64.

#ifndef ABIVM_COMMON_RANDOM_H_
#define ABIVM_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace abivm {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    ABIVM_DCHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias (matters for small spans
    // repeated billions of times less than correctness tests care, but it
    // is cheap).
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v = Next();
    while (v >= limit) v = Next();
    return lo + static_cast<int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  uint64_t Poisson(double mean);

  /// Random lowercase alphabetic string of the given length.
  std::string AlphaString(size_t length);

  /// Exact generator state, for checkpoint/restore of drivers whose
  /// resumed output must continue the original sequence bit-for-bit.
  std::array<uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace abivm

#endif  // ABIVM_COMMON_RANDOM_H_
