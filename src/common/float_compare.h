// Epsilon-tolerant comparisons for cost/budget arithmetic.
//
// Costs are sums (and differences) of doubles, so two mathematically
// equal quantities -- e.g. f(residue) computed directly by
// CostModel::TotalCost versus as `total - flushed` inside the subset
// enumeration -- can differ by a few ulps. A strict `> budget` test then
// lets the two callers disagree about whether the same state is full,
// misclassifying boundary subsets as valid/minimal. Every fullness /
// budget-validity decision must go through these helpers so the whole
// codebase shares one notion of "within budget".

#ifndef ABIVM_COMMON_FLOAT_COMPARE_H_
#define ABIVM_COMMON_FLOAT_COMPARE_H_

#include <algorithm>
#include <cmath>

namespace abivm {

/// Relative half-width of the budget-comparison tolerance band. Large
/// enough to absorb accumulated rounding over realistic cost sums (a few
/// hundred terms), small enough that no experiment's intentional margins
/// (which are many orders of magnitude wider) are affected.
inline constexpr double kCostEpsilon = 1e-9;

/// True iff `cost <= budget` up to tolerance: values within
/// kCostEpsilon * max(1, |cost|, |budget|) of the boundary count as
/// within budget.
inline bool CostWithinBudget(double cost, double budget) {
  const double scale =
      std::max({1.0, std::fabs(cost), std::fabs(budget)});
  return cost <= budget + kCostEpsilon * scale;
}

/// True iff `cost > budget` beyond tolerance (the "full"/"invalid" side).
/// Exact complement of CostWithinBudget.
inline bool CostExceedsBudget(double cost, double budget) {
  return !CostWithinBudget(cost, budget);
}

}  // namespace abivm

#endif  // ABIVM_COMMON_FLOAT_COMPARE_H_
