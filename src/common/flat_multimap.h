// FlatMultiMap: an open-addressing multi-map over flat arrays -- the A*
// intern table of core/astar_workspace.h generalized into a reusable
// container. Design (shared with that table): power-of-two bucket array,
// linear probing, stored hashes, and ONE bucket per distinct key whose
// duplicates form an index-linked chain through the entry arena. Probing
// therefore touches a contiguous int32 bucket array (usually one cache
// line) instead of chasing per-node heap blocks, and never re-hashes a
// stored key (rehash moves buckets by the hash remembered at insert).
//
// Deviations from std::unordered_multimap that callers rely on:
//   * Erase support is per (key, value) pair (EraseOne) -- what index
//     garbage collection needs -- not per iterator. Erasing the last pair
//     of a key leaves a tombstone; tombstones are purged by the next
//     rehash.
//   * Equal-range iteration (ForEachValue) yields a key's values in
//     REVERSE insertion order (chains prepend; rehashes re-link chains in
//     reverse entry order). The order is fully deterministic for a given
//     operation sequence, but unspecified-by-contract, exactly like the
//     unordered_multimap it replaces: consumers must treat the range as a
//     multiset (oracle-enforced by tests/common/flat_multimap_test.cc).
//   * Clear() keeps bucket and entry CAPACITY, so pooled users (the exec
//     workspace) pay no allocation on the warm path.

#ifndef ABIVM_COMMON_FLAT_MULTIMAP_H_
#define ABIVM_COMMON_FLAT_MULTIMAP_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace abivm {

template <typename K, typename V, typename Hash>
class FlatMultiMap {
 public:
  FlatMultiMap() = default;

  /// Live (key, value) pairs.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Distinct keys currently present.
  size_t distinct_keys() const { return keys_; }
  /// Bucket slots (0 before first insert; power of two after).
  size_t bucket_count() const { return buckets_.size(); }

  /// Hash of `key` as this map computes it; pass to the *Hashed entry
  /// points to hash a key once per batch instead of once per probe.
  uint64_t HashOf(const K& key) const { return Hash{}(key); }

  /// Grows the bucket array so `n` distinct keys fit without rehashing.
  void ReserveKeys(size_t n) {
    const size_t want = BucketsFor(n);
    if (want > buckets_.size()) Rehash(want);
    entries_.reserve(n);
  }

  /// True iff inserting one more pair with a NEW key would rehash -- the
  /// deterministic pre-check behind the `flat_index.grow` failpoint.
  bool WouldGrowOnInsert() const {
    return buckets_.empty() ||
           (used_buckets_ + 1) * 4 > buckets_.size() * 3;
  }

  void Insert(const K& key, V value) {
    InsertHashed(HashOf(key), key, std::move(value));
  }

  void InsertHashed(uint64_t hash, const K& key, V value) {
    if (WouldGrowOnInsert()) {
      // Double only when live keys genuinely fill the table; a table full
      // of tombstones rebuilds at the same size.
      const size_t doubled = buckets_.empty() ? kMinBuckets
                                              : buckets_.size() * 2;
      Rehash(keys_ * 4 >= buckets_.size() ? doubled : buckets_.size());
    }
    size_t i = hash & mask_;
    size_t first_tombstone = kNoSlot;
    while (true) {
      const int32_t head = buckets_[i];
      if (head == kEmpty) break;
      if (head == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = i;
      } else if (entries_[static_cast<size_t>(head)].hash == hash &&
                 entries_[static_cast<size_t>(head)].key == key) {
        // Existing key: prepend to its duplicate chain.
        const int32_t e = NewEntry(hash, key, std::move(value), head);
        buckets_[i] = e;
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
    const int32_t e = NewEntry(hash, key, std::move(value), kEndOfChain);
    if (first_tombstone != kNoSlot) {
      // A tombstone already counts toward used_buckets_.
      buckets_[first_tombstone] = e;
      --tombstones_;
    } else {
      buckets_[i] = e;
      ++used_buckets_;
    }
    ++keys_;
    ++size_;
  }

  /// Removes one pair equal to (key, value); returns false when absent.
  bool EraseOne(const K& key, const V& value) {
    if (buckets_.empty()) return false;
    const uint64_t hash = HashOf(key);
    size_t i = hash & mask_;
    while (true) {
      const int32_t head = buckets_[i];
      if (head == kEmpty) return false;
      if (head != kTombstone) {
        Entry& h = entries_[static_cast<size_t>(head)];
        if (h.hash == hash && h.key == key) {
          return EraseFromChain(i, value);
        }
      }
      i = (i + 1) & mask_;
    }
  }

  /// Calls fn(const V&) for every value stored under `key`.
  template <typename Fn>
  void ForEachValue(const K& key, Fn&& fn) const {
    ForEachValueHashed(HashOf(key), key, std::forward<Fn>(fn));
  }

  /// ForEachValue with a caller-computed hash (hash once per batch).
  template <typename Fn>
  void ForEachValueHashed(uint64_t hash, const K& key, Fn&& fn) const {
    if (buckets_.empty()) return;
    size_t i = hash & mask_;
    while (true) {
      const int32_t head = buckets_[i];
      if (head == kEmpty) return;
      if (head != kTombstone) {
        const Entry& h = entries_[static_cast<size_t>(head)];
        if (h.hash == hash && h.key == key) {
          for (int32_t e = head; e != kEndOfChain;
               e = entries_[static_cast<size_t>(e)].next) {
            fn(entries_[static_cast<size_t>(e)].value);
          }
          return;
        }
      }
      i = (i + 1) & mask_;
    }
  }

  /// Calls fn(const K&, const V&) over every live pair (arena order).
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (e.next != kDead) fn(e.key, e.value);
    }
  }

  /// Drops all pairs but keeps bucket and entry arena capacity.
  void Clear() {
    entries_.clear();
    free_.clear();
    if (!buckets_.empty()) buckets_.assign(buckets_.size(), kEmpty);
    size_ = keys_ = used_buckets_ = tombstones_ = 0;
  }

  /// Bytes held by the bucket array and entry arena (capacity-based; the
  /// pooled-workspace no-alloc accounting reads this).
  size_t capacity_bytes() const {
    return buckets_.capacity() * sizeof(int32_t) +
           entries_.capacity() * sizeof(Entry) +
           free_.capacity() * sizeof(int32_t);
  }

 private:
  struct Entry {
    K key;
    V value;
    uint64_t hash;
    // kEndOfChain terminates a duplicate chain; kDead marks a freed slot
    // (sitting in free_); otherwise the next entry of the same key.
    int32_t next;
  };

  static constexpr int32_t kEmpty = -1;      // bucket: never used
  static constexpr int32_t kTombstone = -2;  // bucket: key fully erased
  static constexpr int32_t kEndOfChain = -1;
  static constexpr int32_t kDead = -2;
  static constexpr size_t kMinBuckets = 16;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  static size_t BucketsFor(size_t keys) {
    size_t want = kMinBuckets;
    // Load factor <= 0.75 over distinct keys.
    while (want * 3 < keys * 4) want *= 2;
    return want;
  }

  int32_t NewEntry(uint64_t hash, const K& key, V value, int32_t next) {
    if (!free_.empty()) {
      const int32_t idx = free_.back();
      free_.pop_back();
      Entry& e = entries_[static_cast<size_t>(idx)];
      e.key = key;
      e.value = std::move(value);
      e.hash = hash;
      e.next = next;
      return idx;
    }
    ABIVM_CHECK_MSG(entries_.size() <
                        static_cast<size_t>(
                            std::numeric_limits<int32_t>::max()),
                    "FlatMultiMap entry arena overflow");
    entries_.push_back(Entry{key, std::move(value), hash, next});
    return static_cast<int32_t>(entries_.size() - 1);
  }

  bool EraseFromChain(size_t bucket, const V& value) {
    int32_t prev = kEndOfChain;
    int32_t cur = buckets_[bucket];
    while (cur != kEndOfChain) {
      Entry& e = entries_[static_cast<size_t>(cur)];
      if (e.value == value) {
        if (prev == kEndOfChain) {
          if (e.next == kEndOfChain) {
            buckets_[bucket] = kTombstone;
            ++tombstones_;
            --keys_;
          } else {
            buckets_[bucket] = e.next;
          }
        } else {
          entries_[static_cast<size_t>(prev)].next = e.next;
        }
        e.next = kDead;
        e.key = K{};
        e.value = V{};
        free_.push_back(cur);
        --size_;
        return true;
      }
      prev = cur;
      cur = e.next;
    }
    return false;
  }

  void Rehash(size_t new_buckets) {
    ABIVM_CHECK((new_buckets & (new_buckets - 1)) == 0);
    buckets_.assign(new_buckets, kEmpty);
    mask_ = new_buckets - 1;
    used_buckets_ = 0;
    tombstones_ = 0;
    keys_ = 0;
    // Re-link every live entry through the new bucket array. Entries keep
    // their arena slots; chains rebuild in reverse arena order (prepend),
    // which is deterministic for a given operation history.
    for (size_t idx = 0; idx < entries_.size(); ++idx) {
      Entry& e = entries_[idx];
      if (e.next == kDead) continue;
      size_t i = e.hash & mask_;
      while (true) {
        const int32_t head = buckets_[i];
        if (head == kEmpty) {
          e.next = kEndOfChain;
          buckets_[i] = static_cast<int32_t>(idx);
          ++used_buckets_;
          ++keys_;
          break;
        }
        const Entry& h = entries_[static_cast<size_t>(head)];
        if (h.hash == e.hash && h.key == e.key) {
          e.next = head;
          buckets_[i] = static_cast<int32_t>(idx);
          break;
        }
        i = (i + 1) & mask_;
      }
    }
  }

  std::vector<Entry> entries_;
  std::vector<int32_t> free_;     // arena slots of erased entries
  std::vector<int32_t> buckets_;  // heads into entries_, kEmpty/kTombstone
  size_t mask_ = 0;
  size_t size_ = 0;          // live pairs
  size_t keys_ = 0;          // distinct live keys
  size_t used_buckets_ = 0;  // occupied buckets incl. tombstones
  size_t tombstones_ = 0;
};

}  // namespace abivm

#endif  // ABIVM_COMMON_FLAT_MULTIMAP_H_
