#include "common/fit.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace abivm {

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  ABIVM_CHECK_EQ(xs.size(), ys.size());
  ABIVM_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  ABIVM_CHECK_MSG(denom != 0.0, "FitLinear needs >= 2 distinct x values");

  LinearFit fit;
  fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
  fit.intercept = (sum_y - fit.slope * sum_x) / n;

  const double mean_y = sum_y / n;
  double ss_tot = 0.0, ss_res = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double result = values[mid];
  if (values.size() % 2 == 0) {
    const double below =
        *std::max_element(values.begin(), values.begin() + mid);
    result = (result + below) / 2.0;
  }
  return result;
}

}  // namespace abivm
