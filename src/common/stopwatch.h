// Wall-clock stopwatch for cost calibration and benchmarks.

#ifndef ABIVM_COMMON_STOPWATCH_H_
#define ABIVM_COMMON_STOPWATCH_H_

#include <chrono>

namespace abivm {

/// Measures elapsed wall-clock time in milliseconds (double precision).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMs() const {
    const auto delta = Clock::now() - start_;
    return std::chrono::duration<double, std::milli>(delta).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace abivm

#endif  // ABIVM_COMMON_STOPWATCH_H_
