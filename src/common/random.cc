#include "common/random.h"

#include <cmath>

namespace abivm {

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

uint64_t Rng::Poisson(double mean) {
  ABIVM_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 60.0) {
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  const double value = Normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(value));
}

std::string Rng::AlphaString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) {
    c = static_cast<char>('a' + UniformInt(0, 25));
  }
  return out;
}

}  // namespace abivm
