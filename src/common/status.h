// Minimal Status / Result<T> error-handling vocabulary (no exceptions),
// in the spirit of absl::Status / arrow::Result.

#ifndef ABIVM_COMMON_STATUS_H_
#define ABIVM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace abivm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kUnavailable,
};

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  /// Transient refusal: the caller may retry later (admission control,
  /// a stopped server). Distinct from kFailedPrecondition, which says
  /// the request itself is wrong for the current state.
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kUnavailable:
        return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, like
  // arrow::Result, so `return value;` works in functions returning Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    ABIVM_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ABIVM_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    ABIVM_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    ABIVM_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define ABIVM_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::abivm::Status abivm_status_ = (expr); \
    if (!abivm_status_.ok()) return abivm_status_; \
  } while (0)

}  // namespace abivm

#endif  // ABIVM_COMMON_STATUS_H_
