#include "exec/operators.h"

#include <unordered_map>

#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<DeltaBatch> ScanToBatch(const Table& table, Version version,
                               ExecStats* stats) {
  ABIVM_FAULT_POINT(fault::kFpExecScan);
  DeltaBatch out;
  out.reserve(table.live_row_count());
  table.ScanAt(version, [&](RowId, const Row& row) {
    if (stats != nullptr) ++stats->rows_scanned;
    out.push_back(DeltaRow{row, 1});
  });
  if (stats != nullptr) stats->output_rows += out.size();
  return out;
}

namespace {

Row ConcatProject(const Row& left, const Row& right,
                  const std::vector<size_t>& right_keep) {
  Row out;
  out.reserve(left.size() + right_keep.size());
  out.insert(out.end(), left.begin(), left.end());
  for (size_t c : right_keep) {
    ABIVM_DCHECK(c < right.size());
    out.push_back(right[c]);
  }
  return out;
}

DeltaBatch IndexNestedLoopJoin(const DeltaBatch& input, size_t left_col,
                               const Table& table, size_t right_col,
                               const std::vector<size_t>& right_keep,
                               Version version, ExecStats* stats) {
  DeltaBatch out;
  for (const DeltaRow& delta : input) {
    if (stats != nullptr) ++stats->index_probes;
    table.IndexLookup(
        right_col, delta.row[left_col], version,
        [&](RowId, const Row& matched) {
          out.push_back(DeltaRow{
              ConcatProject(delta.row, matched, right_keep), delta.mult});
        });
  }
  if (stats != nullptr) stats->output_rows += out.size();
  return out;
}

DeltaBatch HashJoinScan(const DeltaBatch& input, size_t left_col,
                        const Table& table, size_t right_col,
                        const std::vector<size_t>& right_keep,
                        Version version, ExecStats* stats) {
  // Build side: the (small) delta batch, keyed by the join value.
  std::unordered_multimap<Value, size_t, ValueHash> build;
  build.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    build.emplace(input[i].row[left_col], i);
  }
  if (stats != nullptr) stats->hash_build_rows += input.size();

  DeltaBatch out;
  table.ScanAt(version, [&](RowId, const Row& row) {
    if (stats != nullptr) ++stats->rows_scanned;
    auto [begin, end] = build.equal_range(row[right_col]);
    for (auto it = begin; it != end; ++it) {
      const DeltaRow& delta = input[it->second];
      out.push_back(
          DeltaRow{ConcatProject(delta.row, row, right_keep), delta.mult});
    }
  });
  if (stats != nullptr) stats->output_rows += out.size();
  return out;
}

}  // namespace

Result<DeltaBatch> JoinBatchWithTable(const DeltaBatch& input,
                                      size_t left_col, const Table& table,
                                      size_t right_col,
                                      const std::vector<size_t>& right_keep,
                                      Version version, ExecStats* stats) {
  if (input.empty()) return DeltaBatch{};
  if (table.HasIndexOn(right_col)) {
    ABIVM_FAULT_POINT(fault::kFpExecIndexJoin);
    return IndexNestedLoopJoin(input, left_col, table, right_col,
                               right_keep, version, stats);
  }
  ABIVM_FAULT_POINT(fault::kFpExecHashJoin);
  return HashJoinScan(input, left_col, table, right_col, right_keep,
                      version, stats);
}

DeltaBatch FilterBatch(const DeltaBatch& input, size_t column, CompareOp op,
                       const Value& constant, ExecStats* stats) {
  if (stats != nullptr) stats->rows_filtered += input.size();
  DeltaBatch out;
  out.reserve(input.size());
  for (const DeltaRow& delta : input) {
    if (EvalCompare(delta.row[column], op, constant)) {
      out.push_back(delta);
    }
  }
  return out;
}

DeltaBatch ProjectBatch(const DeltaBatch& input,
                        const std::vector<size_t>& columns,
                        ExecStats* stats) {
  if (stats != nullptr) stats->rows_projected += input.size();
  DeltaBatch out;
  out.reserve(input.size());
  for (const DeltaRow& delta : input) {
    Row projected;
    projected.reserve(columns.size());
    for (size_t c : columns) {
      ABIVM_DCHECK(c < delta.row.size());
      projected.push_back(delta.row[c]);
    }
    out.push_back(DeltaRow{std::move(projected), delta.mult});
  }
  return out;
}

}  // namespace abivm
