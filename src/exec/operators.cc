#include "exec/operators.h"

#include "exec/pipeline_workspace.h"

namespace abivm {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

// The one-shot operators are compatibility shells over the pooled cores
// in pipeline_workspace.cc: a scratch workspace per call, results moved
// out into a plain DeltaBatch. Counter accounting and failpoint sites are
// those of the cores; repeat callers (the maintainer) hold a workspace
// and use the *Into ops directly.

Result<DeltaBatch> ScanToBatch(const Table& table, Version version,
                               ExecStats* stats) {
  PooledBatch out;
  ABIVM_RETURN_NOT_OK(ScanToBatchInto(table, version, &out, stats));
  DeltaBatch released;
  out.ReleaseTo(&released);
  return released;
}

Result<DeltaBatch> JoinBatchWithTable(const DeltaBatch& input,
                                      size_t left_col, const Table& table,
                                      size_t right_col,
                                      const std::vector<size_t>& right_keep,
                                      Version version, ExecStats* stats) {
  PipelineWorkspace ws;
  PooledBatch out;
  ABIVM_RETURN_NOT_OK(JoinBatchInto(input.data(), input.size(), left_col,
                                    table, right_col, right_keep, version,
                                    ws, &out, stats));
  DeltaBatch released;
  out.ReleaseTo(&released);
  return released;
}

DeltaBatch FilterBatch(const DeltaBatch& input, size_t column, CompareOp op,
                       const Value& constant, ExecStats* stats) {
  if (stats != nullptr) stats->rows_filtered += input.size();
  DeltaBatch out;
  out.reserve(input.size());
  for (const DeltaRow& delta : input) {
    if (EvalCompare(delta.row[column], op, constant)) {
      out.push_back(delta);
    }
  }
  return out;
}

DeltaBatch ProjectBatch(const DeltaBatch& input,
                        const std::vector<size_t>& columns,
                        ExecStats* stats) {
  if (stats != nullptr) stats->rows_projected += input.size();
  DeltaBatch out;
  out.reserve(input.size());
  for (const DeltaRow& delta : input) {
    Row projected;
    projected.reserve(columns.size());
    for (size_t c : columns) {
      ABIVM_DCHECK(c < delta.row.size());
      projected.push_back(delta.row[c]);
    }
    out.push_back(DeltaRow{std::move(projected), delta.mult});
  }
  return out;
}

}  // namespace abivm
