#include "exec/pipeline_workspace.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

namespace {

// ScanToBatchInto's reserve cap: enough to skip regrows on small scans
// without pinning live_row_count() slots when a downstream filter keeps
// almost nothing (pooled growth covers the large case geometrically).
constexpr size_t kScanReserveCap = 1024;

// Appends input ++ right_keep(matched) into a pooled slot, reusing the
// slot's Value storage.
void AppendJoined(PooledBatch* out, const DeltaRow& delta,
                  const Row& matched,
                  const std::vector<size_t>& right_keep) {
  Row& slot = out->Append(delta.mult);
  slot.resize(delta.row.size() + right_keep.size());
  size_t w = 0;
  for (const Value& v : delta.row) slot[w++] = v;
  for (size_t c : right_keep) {
    ABIVM_DCHECK(c < matched.size());
    slot[w++] = matched[c];
  }
}

}  // namespace

void PipelineWorkspace::EnableParallelProbe(ThreadPool* pool,
                                            size_t partitions,
                                            size_t min_rows) {
  ABIVM_CHECK(pool != nullptr);
  probe_pool_ = pool;
  probe_partitions_ =
      partitions == 0 ? pool->thread_count() : partitions;
  probe_min_rows_ = min_rows;
}

size_t PipelineWorkspace::PooledBytes() const {
  // scratch_row_ is deliberately NOT counted: ProjectBatchInPlace swaps
  // it buffer-for-buffer with slot rows, so its capacity is whichever
  // row buffer last landed there -- an inner-row payload (uncounted by
  // rule), not a container that grows. Counting it makes grow_events
  // fire when a larger migrating buffer happens to end a batch in the
  // scratch slot, with no allocation having crossed the batch.
  size_t bytes = batch_a_.capacity_bytes() + batch_b_.capacity_bytes() +
                 build_.capacity_bytes() +
                 key_hashes_.capacity() * sizeof(uint64_t) +
                 partition_out_.capacity() * sizeof(PooledBatch) +
                 partition_stats_.capacity() * sizeof(ExecStats);
  for (const PooledBatch& p : partition_out_) bytes += p.capacity_bytes();
  return bytes;
}

void JoinBuildTable::Build(const DeltaRow* rows, size_t n,
                           size_t left_col) {
  rows_ = rows;
  left_col_ = left_col;
  // Bucket count is the canonical power of two for n (load factor 0.75),
  // recomputed every build; assign() reuses the vector's capacity, so a
  // warm table of the same or smaller batch size allocates nothing.
  size_t want = 16;
  while (want * 3 < n * 4) want *= 2;
  buckets_.assign(want, kEmpty);
  mask_ = want - 1;
  slots_.clear();
  slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Value& key = rows[i].row[left_col];
    const uint64_t hash = ValueHash{}(key);
    size_t b = hash & mask_;
    while (true) {
      const int32_t head = buckets_[b];
      if (head == kEmpty) {
        slots_.push_back(
            Slot{hash, static_cast<uint32_t>(i), kEndOfChain});
        buckets_[b] = static_cast<int32_t>(slots_.size() - 1);
        break;
      }
      const Slot& s = slots_[static_cast<size_t>(head)];
      if (s.hash == hash && KeyOf(s.row) == key) {
        slots_.push_back(Slot{hash, static_cast<uint32_t>(i), head});
        buckets_[b] = static_cast<int32_t>(slots_.size() - 1);
        break;
      }
      b = (b + 1) & mask_;
    }
  }
}

Status ScanToBatchInto(const Table& table, Version version,
                       PooledBatch* out, ExecStats* stats) {
  ABIVM_FAULT_POINT(fault::kFpExecScan);
  out->Clear();
  out->Reserve(std::min(table.live_row_count(), kScanReserveCap));
  table.ScanAt(version, [&](RowId, const Row& row) {
    if (stats != nullptr) ++stats->rows_scanned;
    AssignRow(out->Append(1), row);
  });
  if (stats != nullptr) stats->output_rows += out->size();
  return Status::Ok();
}

namespace {

Status IndexJoinInto(const DeltaRow* rows, size_t n, size_t left_col,
                     const Table& table, const Table::FlatIndex& index,
                     const std::vector<size_t>& right_keep, Version version,
                     PipelineWorkspace& ws, PooledBatch* out,
                     ExecStats* stats) {
  ABIVM_FAULT_POINT(fault::kFpExecIndexJoin);
  table.CheckSnapshotReadable(version);
  // Hash every batch key once, in one tight pass, then probe with the
  // precomputed hashes (the flat index never re-hashes stored keys).
  std::vector<uint64_t>& hashes = ws.key_hashes();
  hashes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    hashes[i] = index.HashOf(rows[i].row[left_col]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (stats != nullptr) ++stats->index_probes;
    const DeltaRow& delta = rows[i];
    table.ProbeIndexHashed(
        index, hashes[i], delta.row[left_col], version,
        [&](RowId, const Row& matched) {
          AppendJoined(out, delta, matched, right_keep);
        });
  }
  if (stats != nullptr) stats->output_rows += out->size();
  return Status::Ok();
}

// One partition's worth of scan-side probing: scan physical rows
// [begin, end) visible at `version` and append matches to `part`.
void ProbeRange(const Table& table, Version version, RowId begin,
                RowId end, const JoinBuildTable& build,
                const DeltaRow* rows, size_t right_col,
                const std::vector<size_t>& right_keep, PooledBatch* part,
                ExecStats* part_stats) {
  table.ScanRangeAt(version, begin, end, [&](RowId, const Row& row) {
    ++part_stats->rows_scanned;
    const Value& key = row[right_col];
    build.ForEachMatchHashed(build.HashOf(key), key, [&](size_t i) {
      AppendJoined(part, rows[i], row, right_keep);
    });
  });
}

Status HashJoinInto(const DeltaRow* rows, size_t n, size_t left_col,
                    const Table& table, size_t right_col,
                    const std::vector<size_t>& right_keep, Version version,
                    PipelineWorkspace& ws, PooledBatch* out,
                    ExecStats* stats) {
  ABIVM_FAULT_POINT(fault::kFpExecHashJoin);
  table.CheckSnapshotReadable(version);
  JoinBuildTable& build = ws.build();
  build.Build(rows, n, left_col);
  if (stats != nullptr) stats->hash_build_rows += n;

  const size_t phys = table.physical_row_count();
  ThreadPool* pool = ws.probe_pool();
  const size_t parts =
      (pool != nullptr && phys >= ws.probe_min_rows())
          ? std::max<size_t>(1, std::min(ws.probe_partitions(), phys))
          : 1;
  if (parts <= 1) {
    ExecStats seq{};
    ProbeRange(table, version, 0, phys, build, rows, right_col,
               right_keep, out, &seq);
    if (stats != nullptr) stats->rows_scanned += seq.rows_scanned;
    if (stats != nullptr) stats->output_rows += out->size();
    return Status::Ok();
  }

  // Partitioned path. The failpoint fires on the CALLER thread before any
  // work is dispatched (registries are thread-local), so an injected
  // fault cancels the whole probe cleanly.
  ABIVM_FAULT_POINT(fault::kFpPartitionedProbe);
  ws.EnsurePartitionSlots(parts);
  const size_t chunk = (phys + parts - 1) / parts;
  for (size_t p = 0; p < parts; ++p) {
    const RowId begin = static_cast<RowId>(p * chunk);
    const RowId end = static_cast<RowId>(std::min(phys, (p + 1) * chunk));
    PooledBatch* part = &ws.partition_out(p);
    ExecStats* part_stats = &ws.partition_stats(p);
    part->Clear();
    *part_stats = ExecStats{};
    if (begin >= end) continue;
    pool->Submit([&table, version, begin, end, &build, rows, right_col,
                  &right_keep, part, part_stats] {
      ProbeRange(table, version, begin, end, build, rows, right_col,
                 right_keep, part, part_stats);
    });
  }
  pool->Wait();
  // Concatenate in partition order -- ranges are contiguous and ordered,
  // so this is byte-for-byte the sequential scan's output. Rows move by
  // buffer swap: the pool's slots trade storage with `out`, nothing is
  // copied.
  for (size_t p = 0; p < parts; ++p) {
    PooledBatch& part = ws.partition_out(p);
    if (stats != nullptr) {
      stats->rows_scanned += ws.partition_stats(p).rows_scanned;
    }
    for (size_t j = 0; j < part.size(); ++j) {
      out->Append(part[j].mult).swap(part[j].row);
    }
  }
  if (stats != nullptr) stats->output_rows += out->size();
  return Status::Ok();
}

}  // namespace

Status JoinBatchInto(const DeltaRow* rows, size_t n, size_t left_col,
                     const Table& table, size_t right_col,
                     const std::vector<size_t>& right_keep, Version version,
                     PipelineWorkspace& ws, PooledBatch* out,
                     ExecStats* stats) {
  out->Clear();
  if (n == 0) return Status::Ok();
  if (const Table::FlatIndex* index = table.IndexOn(right_col)) {
    return IndexJoinInto(rows, n, left_col, table, *index, right_keep,
                         version, ws, out, stats);
  }
  return HashJoinInto(rows, n, left_col, table, right_col, right_keep,
                      version, ws, out, stats);
}

void FilterBatchInPlace(PooledBatch* batch, size_t column, CompareOp op,
                        const Value& constant, ExecStats* stats) {
  if (stats != nullptr) stats->rows_filtered += batch->size();
  size_t w = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    DeltaRow& r = (*batch)[i];
    if (EvalCompare(r.row[column], op, constant)) {
      if (w != i) {
        (*batch)[w].row.swap(r.row);
        (*batch)[w].mult = r.mult;
      }
      ++w;
    }
  }
  batch->TruncateTo(w);
}

void ProjectBatchInPlace(PooledBatch* batch,
                         const std::vector<size_t>& columns,
                         PipelineWorkspace& ws, ExecStats* stats) {
  if (stats != nullptr) stats->rows_projected += batch->size();
  // Stage each projection in the scratch row, then swap buffers with the
  // source. Copy-assignment (not move) keeps duplicate or reordered
  // column lists safe and reuses the scratch slots' string storage.
  Row& scratch = ws.scratch_row();
  for (size_t i = 0; i < batch->size(); ++i) {
    Row& r = (*batch)[i].row;
    scratch.resize(columns.size());
    for (size_t j = 0; j < columns.size(); ++j) {
      ABIVM_DCHECK(columns[j] < r.size());
      scratch[j] = r[columns[j]];
    }
    scratch.swap(r);
  }
}

}  // namespace abivm
