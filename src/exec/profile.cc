#include "exec/profile.h"

namespace abivm {

ExecStats PipelineProfile::TotalStats() const {
  ExecStats total;
  for (const StageStats& stage : stages) total += stage.stats;
  return total;
}

double PipelineProfile::TotalWallMs() const {
  double total = 0.0;
  for (const StageStats& stage : stages) total += stage.wall_ms;
  return total;
}

void PipelineProfile::Merge(const PipelineProfile& other) {
  for (const StageStats& theirs : other.stages) {
    StageStats* mine = nullptr;
    for (StageStats& stage : stages) {
      if (stage.slug == theirs.slug) {
        mine = &stage;
        break;
      }
    }
    if (mine == nullptr) {
      stages.push_back(theirs);
      continue;
    }
    mine->rows_in += theirs.rows_in;
    mine->rows_out += theirs.rows_out;
    mine->stats += theirs.stats;
    mine->wall_ms += theirs.wall_ms;
  }
}

void MergeProfileInto(std::vector<PipelineProfile>& totals,
                      const PipelineProfile& profile) {
  for (PipelineProfile& total : totals) {
    if (total.pipeline == profile.pipeline) {
      total.Merge(profile);
      return;
    }
  }
  totals.push_back(profile);
}

}  // namespace abivm
