// Per-operator attribution of pipeline work. A pipeline run can fill a
// PipelineProfile with one StageStats per stage (the leading
// filter/project block, then one per join step); each slice carries the
// stage's own ExecStats share and wall-clock time, and summing the slices
// reproduces the whole-run totals exactly (test-enforced). This is what
// makes the paper's cost asymmetry *measurable*: an index-probe pipeline
// shows its cost concentrated in probe steps, a scan pipeline in the one
// HASH+SCAN stage.

#ifndef ABIVM_EXEC_PROFILE_H_
#define ABIVM_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operators.h"

namespace abivm {

/// Work attributed to one pipeline stage. `stats` holds only this stage's
/// share of the run's counters.
struct StageStats {
  /// Display label with the strategy as executed, e.g. "INDEX JOIN
  /// supplier" or "HASH+SCAN partsupp".
  std::string op;
  /// Stable strategy-independent key, e.g. "s1.join_supplier"; used to
  /// merge profiles across batches and to name interned metrics.
  std::string slug;
  /// Intermediate rows entering/leaving the stage (display convenience;
  /// not part of the ExecStats sum identity).
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  ExecStats stats;
  double wall_ms = 0.0;
};

/// Per-stage breakdown of one pipeline run, or the stage-wise sum of many
/// runs of the same pipeline.
struct PipelineProfile {
  /// Which pipeline, e.g. "delta(partsupp)" or "recompute".
  std::string pipeline;
  std::vector<StageStats> stages;

  bool empty() const { return stages.empty(); }

  /// Sum of the per-stage slices; equals the whole-run ExecStats.
  ExecStats TotalStats() const;

  /// Sum of the per-stage wall clock. Stages are sub-intervals of the
  /// batch, so this is <= BatchResult::wall_ms (which also covers
  /// net-extract and state application).
  double TotalWallMs() const;

  /// Stage-wise accumulate of another run of the same pipeline. Stages
  /// match by slug (so a strategy flip mid-run keeps accumulating into
  /// one stage); first-seen slugs append.
  void Merge(const PipelineProfile& other);
};

/// Accumulates `profile` into the entry of `totals` with the same
/// pipeline name, appending a new entry for a first-seen pipeline.
void MergeProfileInto(std::vector<PipelineProfile>& totals,
                      const PipelineProfile& profile);

}  // namespace abivm

#endif  // ABIVM_EXEC_PROFILE_H_
