// Column statistics and System-R-style selectivity estimation, feeding
// the maintenance planner's join-order decisions.

#ifndef ABIVM_EXEC_STATS_H_
#define ABIVM_EXEC_STATS_H_

#include <cstdint>
#include <optional>

#include "exec/expression.h"
#include "storage/table.h"

namespace abivm {

/// Statistics of one column at one snapshot.
struct ColumnStats {
  size_t row_count = 0;
  /// Exact distinct-value count (tables here are memory-resident; no
  /// sketching needed at these scales).
  size_t distinct_count = 0;
  /// Min/max present for non-empty columns.
  std::optional<Value> min;
  std::optional<Value> max;
};

/// Scans `table` at `version` and computes stats for `column`.
ColumnStats ComputeColumnStats(const Table& table, size_t column,
                               Version version);

/// Estimated fraction of rows satisfying `column op constant`, in [0, 1].
/// Uses the classic System-R heuristics: 1/distinct for equality,
/// linear min-max interpolation for numeric ranges, and conservative
/// defaults where the stats cannot say more (e.g. string ranges).
double EstimateSelectivity(const ColumnStats& stats, CompareOp op,
                           const Value& constant);

}  // namespace abivm

#endif  // ABIVM_EXEC_STATS_H_
