#include "exec/stats.h"

#include <algorithm>
#include <unordered_set>

namespace abivm {

namespace {

// Fallback fractions when interpolation is impossible (System R's
// historical defaults).
constexpr double kDefaultEqualitySelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

std::optional<double> AsNumeric(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return static_cast<double>(v.AsInt64());
    case ValueType::kDouble:
      return v.AsDouble();
    case ValueType::kString:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

ColumnStats ComputeColumnStats(const Table& table, size_t column,
                               Version version) {
  ABIVM_CHECK_LT(column, table.schema().num_columns());
  ColumnStats stats;
  std::unordered_set<Value, ValueHash> distinct;
  table.ScanAt(version, [&](RowId, const Row& row) {
    const Value& v = row[column];
    ++stats.row_count;
    distinct.insert(v);
    if (!stats.min.has_value() || v < *stats.min) stats.min = v;
    if (!stats.max.has_value() || *stats.max < v) stats.max = v;
  });
  stats.distinct_count = distinct.size();
  return stats;
}

double EstimateSelectivity(const ColumnStats& stats, CompareOp op,
                           const Value& constant) {
  if (stats.row_count == 0) return 0.0;

  const double equality =
      stats.distinct_count > 0
          ? 1.0 / static_cast<double>(stats.distinct_count)
          : kDefaultEqualitySelectivity;

  switch (op) {
    case CompareOp::kEq: {
      // Outside the observed range nothing matches.
      if (stats.min.has_value() &&
          (constant < *stats.min || *stats.max < constant)) {
        return 0.0;
      }
      return equality;
    }
    case CompareOp::kNe:
      return std::max(0.0, 1.0 - equality);
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (!stats.min.has_value()) return kDefaultRangeSelectivity;
      const std::optional<double> lo = AsNumeric(*stats.min);
      const std::optional<double> hi = AsNumeric(*stats.max);
      const std::optional<double> c = AsNumeric(constant);
      if (!lo.has_value() || !hi.has_value() || !c.has_value()) {
        return kDefaultRangeSelectivity;  // strings: no interpolation
      }
      if (*hi <= *lo) {
        // Single-point column: the comparison either keeps all or none.
        const bool keeps = EvalCompare(*stats.min, op, constant);
        return keeps ? 1.0 : 0.0;
      }
      double below = (*c - *lo) / (*hi - *lo);  // fraction with value < c
      below = std::clamp(below, 0.0, 1.0);
      const bool less_side =
          op == CompareOp::kLt || op == CompareOp::kLe;
      return less_side ? below : 1.0 - below;
    }
  }
  return kDefaultRangeSelectivity;
}

}  // namespace abivm
