// DeltaRow batches: the unit of data flowing through maintenance
// pipelines. Each row carries a signed multiplicity (+1 for rows entering
// the view's join result, -1 for rows leaving it); bag semantics
// throughout.

#ifndef ABIVM_EXEC_DELTA_BATCH_H_
#define ABIVM_EXEC_DELTA_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/value.h"

namespace abivm {

struct DeltaRow {
  Row row;
  int64_t mult = 1;
};

using DeltaBatch = std::vector<DeltaRow>;

}  // namespace abivm

#endif  // ABIVM_EXEC_DELTA_BATCH_H_
