// Physical operators for maintenance pipelines. All of them evaluate
// against an explicit table snapshot version, so a pipeline can join a
// delta batch with each co-table "as of" that table's own watermark.
//
// Two join strategies produce the paper's cost asymmetry:
//   * IndexNestedLoopJoin: one index probe per input delta row -- cost
//     linear in the batch size (the "c_dS" shape of Figure 1);
//   * HashJoinScan: build a hash table over the delta batch, then scan the
//     co-table once -- cost dominated by the scan, nearly flat in the
//     batch size (the "c_dR" shape).

#ifndef ABIVM_EXEC_OPERATORS_H_
#define ABIVM_EXEC_OPERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "exec/delta_batch.h"
#include "exec/expression.h"
#include "storage/table.h"

namespace abivm {

/// Work counters; accumulated across a pipeline run. The unit tests use
/// them to verify strategy selection, and the micro-benchmarks report
/// them.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t index_probes = 0;
  uint64_t hash_build_rows = 0;
  uint64_t output_rows = 0;
  /// Rows evaluated by filter predicates (FilterBatch and residual join
  /// equalities).
  uint64_t rows_filtered = 0;
  /// Rows rewritten by projections (ProjectBatch).
  uint64_t rows_projected = 0;

  ExecStats& operator+=(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    index_probes += other.index_probes;
    hash_build_rows += other.hash_build_rows;
    output_rows += other.output_rows;
    rows_filtered += other.rows_filtered;
    rows_projected += other.rows_projected;
    return *this;
  }

  bool operator==(const ExecStats& other) const {
    return rows_scanned == other.rows_scanned &&
           index_probes == other.index_probes &&
           hash_build_rows == other.hash_build_rows &&
           output_rows == other.output_rows &&
           rows_filtered == other.rows_filtered &&
           rows_projected == other.rows_projected;
  }
};

/// Materializes all rows of `table` visible at `version` as a +1 batch
/// (used by full recompute). Fails only on an injected fault (failpoint
/// `exec.scan`); a failure performs no scan work.
Result<DeltaBatch> ScanToBatch(const Table& table, Version version,
                               ExecStats* stats);

/// Equi-joins `input` with `table` on input[left_col] == row[right_col],
/// seeing `table` as of `version`. Output rows are input ++ the
/// `right_keep` columns of the matched table row (early projection: only
/// the columns the rest of the pipeline needs are materialized).
/// Multiplicities preserved. Uses the index on right_col when present,
/// otherwise a hash build over `input` plus one table scan. Fails only on
/// an injected fault (failpoints `exec.index_join` / `exec.hash_join`,
/// checked after strategy selection, before any join work).
Result<DeltaBatch> JoinBatchWithTable(const DeltaBatch& input,
                                      size_t left_col, const Table& table,
                                      size_t right_col,
                                      const std::vector<size_t>& right_keep,
                                      Version version, ExecStats* stats);

/// Keeps rows whose `column` satisfies the comparison. When `stats` is
/// given, charges one `rows_filtered` per input row.
DeltaBatch FilterBatch(const DeltaBatch& input, size_t column, CompareOp op,
                       const Value& constant, ExecStats* stats = nullptr);

/// Keeps only the named column positions (in the given order). When
/// `stats` is given, charges one `rows_projected` per input row.
DeltaBatch ProjectBatch(const DeltaBatch& input,
                        const std::vector<size_t>& columns,
                        ExecStats* stats = nullptr);

}  // namespace abivm

#endif  // ABIVM_EXEC_OPERATORS_H_
