// PipelineWorkspace: the reusable storage behind maintenance pipelines --
// the exec-layer sibling of core/astar_workspace.h's PlannerWorkspace.
//
// One ProcessBatch run churns through several short-lived buffers: the
// delta batch at each pipeline stage, the HashJoinScan build table, a
// per-batch key-hash scratch, and (when enabled) per-partition output
// slots for the parallel scan-side probe. The workspace owns all of them
// and pools CAPACITY across batches: a warm maintainer allocates nothing
// on the steady-state path (grow_events() goes flat once the workspace has
// seen the largest batch of its workload; test- and bench-pinned).
// Results are bit-identical warm or cold -- no logical state survives a
// batch, only capacity.
//
// Lifetime and aliasing rules (see DESIGN.md 5h):
//   * A workspace serves ONE pipeline run at a time; it is not
//     thread-safe. The partitioned probe fans out INTERNALLY (thread-
//     confined per-partition slots); callers still treat the workspace as
//     single-threaded.
//   * The ops below hand out references into pooled buffers (PooledBatch
//     rows, the build table) that are invalidated by the next op on the
//     same workspace. Consumers that outlive the batch must copy
//     (PooledBatch::ReleaseTo deep-moves rows out of the pool).
//   * JoinBatchInto's input must not alias its output batch; the build
//     table keeps raw pointers into the input rows for the whole call.

#ifndef ABIVM_EXEC_PIPELINE_WORKSPACE_H_
#define ABIVM_EXEC_PIPELINE_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace abivm {

class ThreadPool;

/// Assigns `src` into `dst` element-wise, reusing dst's per-Value heap
/// storage (a string Value assigned over a string Value reuses its
/// buffer). The workhorse of slot reuse in PooledBatch.
inline void AssignRow(Row& dst, const Row& src) {
  dst.resize(src.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

/// A DeltaBatch with pooled row slots: Clear() resets the logical size to
/// zero but keeps every previously-built DeltaRow (and the Value/string
/// buffers inside it) for the next fill. Append returns a slot to assign
/// into, so refilling a warm batch does no allocation until rows outgrow
/// their previous occupants.
class PooledBatch {
 public:
  PooledBatch() = default;
  PooledBatch(PooledBatch&&) = default;
  PooledBatch& operator=(PooledBatch&&) = default;
  PooledBatch(const PooledBatch&) = delete;
  PooledBatch& operator=(const PooledBatch&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const DeltaRow& operator[](size_t i) const { return rows_[i]; }
  DeltaRow& operator[](size_t i) { return rows_[i]; }
  const DeltaRow* data() const { return rows_.data(); }

  /// Logical reset; slots (and their heap payloads) stay pooled.
  void Clear() { size_ = 0; }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// Appends a row slot with the given multiplicity and returns its Row
  /// for the caller to fill (typically via AssignRow). The returned
  /// reference is invalidated by the next Append.
  Row& Append(int64_t mult) {
    if (size_ == rows_.size()) rows_.emplace_back();
    DeltaRow& slot = rows_[size_++];
    slot.mult = mult;
    return slot.row;
  }

  /// Shrinks the logical size (in-place filter compaction).
  void TruncateTo(size_t n) {
    ABIVM_DCHECK(n <= size_);
    size_ = n;
  }

  void Swap(PooledBatch& other) {
    rows_.swap(other.rows_);
    std::swap(size_, other.size_);
  }

  /// Moves the live rows out into a plain DeltaBatch (the compatibility
  /// wrappers in operators.cc use this); the pool is left empty.
  void ReleaseTo(DeltaBatch* out) {
    rows_.resize(size_);
    *out = std::move(rows_);
    rows_ = DeltaBatch{};
    size_ = 0;
  }

  /// Slot-array capacity in bytes (outer container only; the Rows inside
  /// slots own further heap storage that is not counted).
  size_t capacity_bytes() const {
    return rows_.capacity() * sizeof(DeltaRow);
  }

 private:
  DeltaBatch rows_;  // physical slots; [0, size_) are live
  size_t size_ = 0;
};

/// Build side of HashJoinScan as a flat open-addressing table over the
/// input batch: entries hold {stored hash, input row index, chain link}
/// and the join KEYS stay in the batch rows (zero Value copies to build).
/// Same layout discipline as common/flat_multimap.h, minus erase support.
/// Probe results are independent of the bucket count, so pooling bucket
/// capacity across batches cannot change output.
class JoinBuildTable {
 public:
  JoinBuildTable() = default;
  JoinBuildTable(const JoinBuildTable&) = delete;
  JoinBuildTable& operator=(const JoinBuildTable&) = delete;

  /// (Re)builds over rows[0..n) keyed by row[left_col]. The table keeps
  /// raw pointers into `rows` until the next Build.
  void Build(const DeltaRow* rows, size_t n, size_t left_col);

  uint64_t HashOf(const Value& key) const { return ValueHash{}(key); }

  /// Calls fn(size_t input_index) for every input row whose key equals
  /// `key`, in reverse input order (chains prepend -- deterministic for a
  /// given input, like FlatMultiMap).
  template <typename Fn>
  void ForEachMatchHashed(uint64_t hash, const Value& key, Fn&& fn) const {
    if (buckets_.empty()) return;
    size_t b = hash & mask_;
    while (true) {
      const int32_t head = buckets_[b];
      if (head == kEmpty) return;
      const Slot& s = slots_[static_cast<size_t>(head)];
      if (s.hash == hash && KeyOf(s.row) == key) {
        for (int32_t e = head; e != kEndOfChain;
             e = slots_[static_cast<size_t>(e)].next) {
          fn(static_cast<size_t>(slots_[static_cast<size_t>(e)].row));
        }
        return;
      }
      b = (b + 1) & mask_;
    }
  }

  size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           buckets_.capacity() * sizeof(int32_t);
  }

 private:
  struct Slot {
    uint64_t hash;
    uint32_t row;  // index into the input batch
    int32_t next;  // next input row with the same key, or kEndOfChain
  };

  static constexpr int32_t kEmpty = -1;
  static constexpr int32_t kEndOfChain = -1;

  const Value& KeyOf(uint32_t row) const {
    return rows_[row].row[left_col_];
  }

  const DeltaRow* rows_ = nullptr;
  size_t left_col_ = 0;
  std::vector<Slot> slots_;
  std::vector<int32_t> buckets_;
  size_t mask_ = 0;
};

/// Reusable storage for the pipeline ops below. Default-constructed
/// empty; grows on first use and keeps capacity across batches. The
/// maintainer owns one and brackets every ProcessBatch with
/// BeginBatch()/FinishBatch() to drive the no-alloc accounting.
class PipelineWorkspace {
 public:
  PipelineWorkspace() = default;
  PipelineWorkspace(const PipelineWorkspace&) = delete;
  PipelineWorkspace& operator=(const PipelineWorkspace&) = delete;

  // ---- Parallel scan-side probe (opt-in) -------------------------------
  // With a pool attached, JoinBatchInto's hash-join path splits the
  // scanned table into `partitions` contiguous physical-row ranges (0 =
  // one per pool thread) when the table has at least `min_rows` physical
  // rows. Output is bit-identical to the sequential path at every
  // partition and thread count: partition results are concatenated in
  // partition order, which IS the sequential scan order.
  static constexpr size_t kDefaultProbeMinRows = 2048;

  void EnableParallelProbe(ThreadPool* pool, size_t partitions = 0,
                           size_t min_rows = kDefaultProbeMinRows);
  void DisableParallelProbe() { probe_pool_ = nullptr; }
  ThreadPool* probe_pool() const { return probe_pool_; }
  size_t probe_partitions() const { return probe_partitions_; }
  size_t probe_min_rows() const { return probe_min_rows_; }

  // ---- No-alloc-on-warm-path accounting --------------------------------
  /// Batches bracketed by BeginBatch/FinishBatch so far.
  uint64_t batches() const { return batches_; }
  /// Batches that found warm capacity (every batch after the first);
  /// exported as the `exec.workspace_reuses` counter.
  uint64_t reuses() const { return batches_ == 0 ? 0 : batches_ - 1; }
  /// Batches during which some pooled buffer's capacity grew. Flat once
  /// the workspace has warmed up -- the deterministic "no allocations on
  /// the warm path" signal the tests and bench tiers pin.
  uint64_t grow_events() const { return grow_events_; }
  /// High-water mark of pooled bytes; exported as `exec.arena_bytes_peak`.
  size_t arena_bytes_peak() const { return arena_bytes_peak_; }

  /// Capacity-based byte total over the pooled outer containers (DeltaRow
  /// slot arrays, build table, hash scratch, partition slots). Row/string
  /// payloads inside slots -- including scratch_row(), which trades
  /// buffers with slot rows -- are pooled too but not counted here.
  size_t PooledBytes() const;

  /// Clears logical state for a fresh batch, keeping capacity.
  void BeginBatch() {
    batch_a_.Clear();
    batch_b_.Clear();
    bytes_at_begin_ = PooledBytes();
  }

  void FinishBatch() {
    ++batches_;
    const size_t bytes = PooledBytes();
    if (bytes > bytes_at_begin_) ++grow_events_;
    if (bytes > arena_bytes_peak_) arena_bytes_peak_ = bytes;
  }

  // ---- Pooled pieces (used by the ops below and the maintainer) --------
  PooledBatch& batch_a() { return batch_a_; }
  PooledBatch& batch_b() { return batch_b_; }
  JoinBuildTable& build() { return build_; }
  std::vector<uint64_t>& key_hashes() { return key_hashes_; }
  Row& scratch_row() { return scratch_row_; }

  /// Grows (never shrinks) the per-partition slot arrays.
  void EnsurePartitionSlots(size_t n) {
    if (partition_out_.size() < n) partition_out_.resize(n);
    if (partition_stats_.size() < n) partition_stats_.resize(n);
  }
  PooledBatch& partition_out(size_t p) { return partition_out_[p]; }
  ExecStats& partition_stats(size_t p) { return partition_stats_[p]; }

 private:
  PooledBatch batch_a_;
  PooledBatch batch_b_;
  JoinBuildTable build_;
  std::vector<uint64_t> key_hashes_;  // one per input row, per join stage
  Row scratch_row_;                   // in-place projection staging
  std::vector<PooledBatch> partition_out_;
  std::vector<ExecStats> partition_stats_;

  ThreadPool* probe_pool_ = nullptr;
  size_t probe_partitions_ = 0;
  size_t probe_min_rows_ = kDefaultProbeMinRows;

  uint64_t batches_ = 0;
  uint64_t grow_events_ = 0;
  size_t arena_bytes_peak_ = 0;
  size_t bytes_at_begin_ = 0;
};

// ---- Workspace-based pipeline ops ------------------------------------
// The cores behind the one-shot operators in operators.h. Same counters,
// same failpoint sites, same output multisets; these variants write into
// pooled batches and mutate in place where the one-shots copied.

/// ScanToBatch into a pooled batch. The reserve is capped: a scan feeding
/// a selective filter must not pin live_row_count() slots forever.
Status ScanToBatchInto(const Table& table, Version version,
                       PooledBatch* out, ExecStats* stats);

/// JoinBatchWithTable over a row span, into a pooled batch. `rows` must
/// not alias `out`'s storage. Uses ws's build table / hash scratch /
/// partition slots; runs the partitioned probe when ws enables it and the
/// hash-join strategy is selected.
Status JoinBatchInto(const DeltaRow* rows, size_t n, size_t left_col,
                     const Table& table, size_t right_col,
                     const std::vector<size_t>& right_keep, Version version,
                     PipelineWorkspace& ws, PooledBatch* out,
                     ExecStats* stats);

inline Status JoinBatchInto(const PooledBatch& input, size_t left_col,
                            const Table& table, size_t right_col,
                            const std::vector<size_t>& right_keep,
                            Version version, PipelineWorkspace& ws,
                            PooledBatch* out, ExecStats* stats) {
  return JoinBatchInto(input.data(), input.size(), left_col, table,
                       right_col, right_keep, version, ws, out, stats);
}

/// FilterBatch in place (compacts kept rows to the front by swapping row
/// slots; no Value copies).
void FilterBatchInPlace(PooledBatch* batch, size_t column, CompareOp op,
                        const Value& constant, ExecStats* stats = nullptr);

/// ProjectBatch in place via ws.scratch_row() (handles duplicate and
/// reordered column lists; no per-row allocation on the warm path).
void ProjectBatchInPlace(PooledBatch* batch,
                         const std::vector<size_t>& columns,
                         PipelineWorkspace& ws, ExecStats* stats = nullptr);

}  // namespace abivm

#endif  // ABIVM_EXEC_PIPELINE_WORKSPACE_H_
