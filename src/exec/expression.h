// Scalar comparison predicates evaluated against flat (combined) rows.

#ifndef ABIVM_EXEC_EXPRESSION_H_
#define ABIVM_EXEC_EXPRESSION_H_

#include <string>

#include "storage/value.h"

namespace abivm {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

inline bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace abivm

#endif  // ABIVM_EXEC_EXPRESSION_H_
