// Cost functions f_i(k): the cost of batch-processing k modifications from
// delta table i (Section 2 of the paper).
//
// Every cost function must satisfy, over its whole domain:
//   * f(0) = 0
//   * Monotonicity:  x >= y  =>  f(x) >= f(y)
//   * Subadditivity: f(x + y) <= f(x) + f(y)
// Subadditivity captures the benefit of batching; it does NOT imply
// concavity (e.g. StepCost, the block-I/O example from the paper).

#ifndef ABIVM_COST_COST_FUNCTION_H_
#define ABIVM_COST_COST_FUNCTION_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace abivm {

/// Sentinel returned by CostFunction::MaxBatchWithin when every batch size
/// fits the budget (the cost plateaus below it).
inline constexpr uint64_t kUnboundedBatch =
    std::numeric_limits<uint64_t>::max();

/// Interface for a per-table batch-processing cost function.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// f(k). Must satisfy f(0) == 0, monotonicity and subadditivity.
  virtual double Cost(uint64_t k) const = 0;

  /// Largest batch size b with Cost(b) <= budget; 0 if even one
  /// modification exceeds the budget; kUnboundedBatch if the function never
  /// exceeds it. The default implementation runs doubling + binary search
  /// using monotonicity; subclasses with closed forms override it.
  virtual uint64_t MaxBatchWithin(double budget) const;

  /// True iff the per-item cost f(k)/k is non-increasing in k (equivalently
  /// f(k) >= (k/b) * f(b) for all k <= b). Holds for every concave function
  /// with f(0) = 0 (linear, capped, sqrt) but NOT for StepCost. The A*
  /// heuristic may only use the paper's floor(R/b)*f(b) lower-bound term
  /// when this holds; otherwise that term can overestimate. Defaults to
  /// false (safe).
  virtual bool CostPerItemNonIncreasing() const { return false; }

  /// Human-readable description, e.g. "linear(a=0.25,b=3)".
  virtual std::string ToString() const = 0;
};

using CostFunctionPtr = std::shared_ptr<const CostFunction>;

/// f(k) = a*k + b for k >= 1, f(0) = 0. The workhorse model of Section 3.3:
/// fixed setup cost b plus per-modification cost a.
class LinearCost final : public CostFunction {
 public:
  /// Requires a > 0 and b >= 0 (otherwise not monotone/subadditive).
  LinearCost(double a, double b);

  double Cost(uint64_t k) const override;
  uint64_t MaxBatchWithin(double budget) const override;
  std::string ToString() const override;

  bool CostPerItemNonIncreasing() const override { return true; }

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_;
  double b_;
};

/// f(k) = min(a*k + b, a*cap + b) for k >= 1, f(0) = 0: linear up to `cap`
/// modifications, flat afterwards. This is the PARTSUPP shape from Figure 4
/// of the paper (the joining tables fit in memory, so beyond some batch
/// size a batch costs the same as a full scan pass).
class AffineCappedCost final : public CostFunction {
 public:
  /// Requires a > 0, b >= 0, cap >= 1.
  AffineCappedCost(double a, double b, uint64_t cap);

  double Cost(uint64_t k) const override;
  uint64_t MaxBatchWithin(double budget) const override;
  std::string ToString() const override;

  bool CostPerItemNonIncreasing() const override { return true; }

  double plateau() const { return a_ * static_cast<double>(cap_) + b_; }

 private:
  double a_;
  double b_;
  uint64_t cap_;
};

/// f(k) = ceil(k / block) * cost_per_block: the paper's example of a
/// subadditive but non-concave function (I/O cost of scanning k records
/// packed into blocks).
class StepCost final : public CostFunction {
 public:
  /// Requires block >= 1 and cost_per_block > 0.
  StepCost(uint64_t block, double cost_per_block);

  double Cost(uint64_t k) const override;
  uint64_t MaxBatchWithin(double budget) const override;
  std::string ToString() const override;

 private:
  uint64_t block_;
  double cost_per_block_;
};

/// f(k) = a*sqrt(k) + b for k >= 1, f(0) = 0: a strictly concave shape
/// (e.g. index maintenance with strong locality across a sorted batch).
class ConcaveCost final : public CostFunction {
 public:
  /// Requires a > 0 and b >= 0.
  ConcaveCost(double a, double b);

  double Cost(uint64_t k) const override;
  bool CostPerItemNonIncreasing() const override { return true; }
  std::string ToString() const override;

 private:
  double a_;
  double b_;
};

/// Piecewise-linear interpolation through measured (batch_size, cost)
/// samples; extrapolates the last segment's slope (clamped non-negative).
/// This is the "table-driven" cost model produced by calibration against
/// the real engine.
class PiecewiseLinearCost final : public CostFunction {
 public:
  /// `samples` are (k, cost) pairs; k strictly increasing, k >= 1, costs
  /// non-decreasing. An implicit (0, 0) point is prepended. At least one
  /// sample is required.
  explicit PiecewiseLinearCost(
      std::vector<std::pair<uint64_t, double>> samples);

  double Cost(uint64_t k) const override;
  /// Computed at construction by checking the per-item ratio at every
  /// breakpoint (the ratio is monotone within each linear segment, so
  /// breakpoints suffice).
  bool CostPerItemNonIncreasing() const override { return star_shaped_; }
  std::string ToString() const override;

 private:
  std::vector<std::pair<uint64_t, double>> samples_;
  bool star_shaped_ = false;
};

/// The cost function from the paper's (2 - epsilon) lower-bound instance
/// (Section 3.2): f(x) = (eps*x/2)*C for x <= 2/eps, (1 + eps/2)*C above.
/// Returned as an AffineCappedCost with the exact same values.
CostFunctionPtr MakePaperGapCost(double epsilon, double budget_c);

/// The paper's measured Figure-1 cost functions, digitized from the
/// numbers the text gives (milliseconds):
///   c_dS(k) = 0.25 * k              -- indexed nested-loop join side;
///   c_dR(k) = min(0.107*k + 285.7, 351) -- scan side: rises to the
///             response-time constraint of 350 ms at ~600 modifications
///             ("0.35 seconds every 600 dR tuples"), then flat.
/// With C = 350 these reproduce the introduction's numbers exactly:
/// NAIVE flushes every ~180+180 modifications at 0.97 ms/modification,
/// the asymmetric plan runs at ~0.42 ms/modification.
CostFunctionPtr MakePaperFig1LinearSideCost();
CostFunctionPtr MakePaperFig1ScanSideCost();
/// The matching response-time constraint (350 ms).
inline constexpr double kPaperFig1BudgetMs = 350.0;

/// Exhaustively checks f(x) >= f(y) for all 0 <= y <= x <= max_k.
bool IsMonotone(const CostFunction& f, uint64_t max_k);

/// Exhaustively checks f(0) == 0 and f(x+y) <= f(x) + f(y) (+ tiny float
/// slack) for all x, y with x + y <= max_k.
bool IsSubadditive(const CostFunction& f, uint64_t max_k);

}  // namespace abivm

#endif  // ABIVM_COST_COST_FUNCTION_H_
