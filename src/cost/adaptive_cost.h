// AdaptiveLinearCost: an online-updating linear cost model.
//
// The paper obtains cost functions "by experiments or from past
// experience" and treats them as fixed. In a deployed system the true
// costs drift (base tables grow, caches warm up), so a scheduler should
// keep its model current. This class observes (batch_size, measured_cost)
// pairs -- e.g. every ProcessBatch result -- and maintains a recursive
// least-squares fit of f(k) = a*k + b with exponential forgetting, while
// always exposing a *valid* cost function (a > 0, b >= 0) no matter how
// noisy or sparse the observations are.

#ifndef ABIVM_COST_ADAPTIVE_COST_H_
#define ABIVM_COST_ADAPTIVE_COST_H_

#include <cstdint>

#include "cost/cost_function.h"

namespace abivm {

struct AdaptiveCostOptions {
  /// Exponential forgetting factor in (0, 1]: weight of past observations
  /// decays by this per new observation. 1.0 = ordinary least squares.
  double forgetting = 0.98;
  /// Parameters used before enough observations arrive, and lower clamps
  /// afterwards (a valid LinearCost needs a > 0, b >= 0).
  double initial_a = 1.0;
  double initial_b = 0.0;
  double min_a = 1e-9;
};

/// Thread-compatible (external synchronization if shared). Copyable.
class AdaptiveLinearCost final : public CostFunction {
 public:
  explicit AdaptiveLinearCost(AdaptiveCostOptions options = {});

  /// Feeds one measurement: a batch of `k` modifications cost `cost_ms`.
  /// Observations with k == 0 are ignored (f(0) is 0 by definition).
  void Observe(uint64_t k, double cost_ms);

  /// Current slope / intercept estimates (clamped valid).
  double a() const;
  double b() const;
  uint64_t observations() const { return observations_; }

  double Cost(uint64_t k) const override;
  uint64_t MaxBatchWithin(double budget) const override;
  bool CostPerItemNonIncreasing() const override { return true; }
  std::string ToString() const override;

  /// Immutable snapshot of the current fit.
  CostFunctionPtr Freeze() const;

 private:
  AdaptiveCostOptions options_;
  // Weighted sufficient statistics for y ~ a*k + b:
  //   s0 = sum w, s1 = sum w*k, s2 = sum w*k^2,
  //   t0 = sum w*y, t1 = sum w*k*y.
  double s0_ = 0.0, s1_ = 0.0, s2_ = 0.0, t0_ = 0.0, t1_ = 0.0;
  uint64_t observations_ = 0;
};

}  // namespace abivm

#endif  // ABIVM_COST_ADAPTIVE_COST_H_
