#include "cost/adaptive_cost.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace abivm {

AdaptiveLinearCost::AdaptiveLinearCost(AdaptiveCostOptions options)
    : options_(options) {
  ABIVM_CHECK_GT(options_.forgetting, 0.0);
  ABIVM_CHECK_LE(options_.forgetting, 1.0);
  ABIVM_CHECK_GT(options_.initial_a, 0.0);
  ABIVM_CHECK_GE(options_.initial_b, 0.0);
  ABIVM_CHECK_GT(options_.min_a, 0.0);
}

void AdaptiveLinearCost::Observe(uint64_t k, double cost_ms) {
  if (k == 0) return;
  const double lambda = options_.forgetting;
  s0_ = lambda * s0_ + 1.0;
  const double kd = static_cast<double>(k);
  s1_ = lambda * s1_ + kd;
  s2_ = lambda * s2_ + kd * kd;
  t0_ = lambda * t0_ + cost_ms;
  t1_ = lambda * t1_ + kd * cost_ms;
  ++observations_;
}

double AdaptiveLinearCost::a() const {
  // Solve the 2x2 normal equations; fall back to a proportional estimate
  // (or the prior) when the batch sizes seen so far are degenerate.
  const double det = s0_ * s2_ - s1_ * s1_;
  if (observations_ >= 2 && std::abs(det) > 1e-12) {
    const double slope = (s0_ * t1_ - s1_ * t0_) / det;
    return std::max(slope, options_.min_a);
  }
  if (observations_ >= 1 && s1_ > 0.0) {
    return std::max(t0_ / s1_, options_.min_a);  // through the origin
  }
  return options_.initial_a;
}

double AdaptiveLinearCost::b() const {
  const double det = s0_ * s2_ - s1_ * s1_;
  if (observations_ >= 2 && std::abs(det) > 1e-12) {
    const double slope = (s0_ * t1_ - s1_ * t0_) / det;
    const double clamped = std::max(slope, options_.min_a);
    // Re-derive the intercept with the (possibly clamped) slope so the
    // fitted line still passes through the weighted centroid.
    const double intercept = (t0_ - clamped * s1_) / s0_;
    return std::max(intercept, 0.0);
  }
  return options_.initial_b;
}

double AdaptiveLinearCost::Cost(uint64_t k) const {
  if (k == 0) return 0.0;
  return a() * static_cast<double>(k) + b();
}

uint64_t AdaptiveLinearCost::MaxBatchWithin(double budget) const {
  return LinearCost(a(), b()).MaxBatchWithin(budget);
}

std::string AdaptiveLinearCost::ToString() const {
  std::ostringstream oss;
  oss << "adaptive_linear(a=" << a() << ",b=" << b()
      << ",obs=" << observations_ << ")";
  return oss.str();
}

CostFunctionPtr AdaptiveLinearCost::Freeze() const {
  return std::make_shared<LinearCost>(a(), b());
}

}  // namespace abivm
