#include "cost/cost_function.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace abivm {

namespace {

// Upper limit for the generic doubling search; batch sizes beyond this are
// treated as unbounded. 2^48 modifications is far past any real workload.
constexpr uint64_t kSearchCap = uint64_t{1} << 48;

// Slack for floating-point comparisons of accumulated costs.
constexpr double kEps = 1e-9;

}  // namespace

uint64_t CostFunction::MaxBatchWithin(double budget) const {
  if (budget < 0.0) return 0;
  if (Cost(1) > budget + kEps) return 0;
  // Doubling phase: find hi with Cost(hi) > budget.
  uint64_t lo = 1;
  uint64_t hi = 2;
  while (hi <= kSearchCap && Cost(hi) <= budget + kEps) {
    lo = hi;
    hi *= 2;
  }
  if (hi > kSearchCap) return kUnboundedBatch;
  // Invariant: Cost(lo) <= budget < Cost(hi).
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (Cost(mid) <= budget + kEps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

LinearCost::LinearCost(double a, double b) : a_(a), b_(b) {
  ABIVM_CHECK_GT(a, 0.0);
  ABIVM_CHECK_GE(b, 0.0);
}

double LinearCost::Cost(uint64_t k) const {
  if (k == 0) return 0.0;
  return a_ * static_cast<double>(k) + b_;
}

uint64_t LinearCost::MaxBatchWithin(double budget) const {
  if (budget + kEps < a_ + b_) return 0;
  const double k = (budget - b_) / a_;
  // Guard against floating-point overshoot at the boundary.
  auto fits = [&](double v) { return a_ * v + b_ <= budget + kEps; };
  double candidate = std::floor(k + kEps);
  if (!fits(candidate)) candidate -= 1.0;
  if (candidate < 1.0) return 0;
  if (candidate >= static_cast<double>(kUnboundedBatch)) {
    return kUnboundedBatch;
  }
  return static_cast<uint64_t>(candidate);
}

std::string LinearCost::ToString() const {
  std::ostringstream oss;
  oss << "linear(a=" << a_ << ",b=" << b_ << ")";
  return oss.str();
}

AffineCappedCost::AffineCappedCost(double a, double b, uint64_t cap)
    : a_(a), b_(b), cap_(cap) {
  ABIVM_CHECK_GT(a, 0.0);
  ABIVM_CHECK_GE(b, 0.0);
  ABIVM_CHECK_GE(cap, uint64_t{1});
}

double AffineCappedCost::Cost(uint64_t k) const {
  if (k == 0) return 0.0;
  const uint64_t effective = k < cap_ ? k : cap_;
  return a_ * static_cast<double>(effective) + b_;
}

uint64_t AffineCappedCost::MaxBatchWithin(double budget) const {
  if (plateau() <= budget + kEps) return kUnboundedBatch;
  return LinearCost(a_, b_).MaxBatchWithin(budget);
}

std::string AffineCappedCost::ToString() const {
  std::ostringstream oss;
  oss << "affine_capped(a=" << a_ << ",b=" << b_ << ",cap=" << cap_ << ")";
  return oss.str();
}

StepCost::StepCost(uint64_t block, double cost_per_block)
    : block_(block), cost_per_block_(cost_per_block) {
  ABIVM_CHECK_GE(block, uint64_t{1});
  ABIVM_CHECK_GT(cost_per_block, 0.0);
}

double StepCost::Cost(uint64_t k) const {
  const uint64_t blocks = (k + block_ - 1) / block_;
  return static_cast<double>(blocks) * cost_per_block_;
}

uint64_t StepCost::MaxBatchWithin(double budget) const {
  if (budget + kEps < cost_per_block_) return 0;
  const double max_blocks = std::floor(budget / cost_per_block_ + kEps);
  if (max_blocks >= static_cast<double>(kUnboundedBatch / block_)) {
    return kUnboundedBatch;
  }
  return static_cast<uint64_t>(max_blocks) * block_;
}

std::string StepCost::ToString() const {
  std::ostringstream oss;
  oss << "step(block=" << block_ << ",cost=" << cost_per_block_ << ")";
  return oss.str();
}

ConcaveCost::ConcaveCost(double a, double b) : a_(a), b_(b) {
  ABIVM_CHECK_GT(a, 0.0);
  ABIVM_CHECK_GE(b, 0.0);
}

double ConcaveCost::Cost(uint64_t k) const {
  if (k == 0) return 0.0;
  return a_ * std::sqrt(static_cast<double>(k)) + b_;
}

std::string ConcaveCost::ToString() const {
  std::ostringstream oss;
  oss << "concave(a=" << a_ << ",b=" << b_ << ")";
  return oss.str();
}

PiecewiseLinearCost::PiecewiseLinearCost(
    std::vector<std::pair<uint64_t, double>> samples)
    : samples_(std::move(samples)) {
  ABIVM_CHECK_MSG(!samples_.empty(),
                  "PiecewiseLinearCost needs at least one sample");
  uint64_t prev_k = 0;
  double prev_cost = 0.0;
  bool first = true;
  for (const auto& [k, cost] : samples_) {
    ABIVM_CHECK_MSG(k >= 1, "sample batch sizes must be >= 1");
    ABIVM_CHECK_MSG(first || k > prev_k,
                    "sample batch sizes must be strictly increasing");
    ABIVM_CHECK_MSG(cost >= prev_cost - kEps,
                    "sample costs must be non-decreasing");
    prev_k = k;
    prev_cost = cost;
    first = false;
  }
  // Star-shapedness (per-item cost non-increasing): the ratio f(k)/k is
  // monotone within every linear segment, so checking breakpoint ratios
  // plus the extrapolation slope suffices.
  star_shaped_ = true;
  double prev_ratio = std::numeric_limits<double>::infinity();
  for (const auto& [k, cost] : samples_) {
    const double ratio = cost / static_cast<double>(k);
    if (ratio > prev_ratio + kEps) {
      star_shaped_ = false;
      break;
    }
    prev_ratio = ratio;
  }
  if (star_shaped_ && samples_.size() >= 2) {
    const auto& [ka, ca] = samples_[samples_.size() - 2];
    const auto& [kb, cb] = samples_.back();
    const double slope = (cb - ca) / static_cast<double>(kb - ka);
    if (slope > cb / static_cast<double>(kb) + kEps) star_shaped_ = false;
  }
}

double PiecewiseLinearCost::Cost(uint64_t k) const {
  if (k == 0) return 0.0;
  // Implicit origin point (0, 0).
  uint64_t k0 = 0;
  double c0 = 0.0;
  for (const auto& [ks, cs] : samples_) {
    if (k <= ks) {
      const double frac = static_cast<double>(k - k0) /
                          static_cast<double>(ks - k0);
      return c0 + frac * (cs - c0);
    }
    k0 = ks;
    c0 = cs;
  }
  // Extrapolate beyond the last sample using the last segment's slope.
  double slope = 0.0;
  if (samples_.size() >= 2) {
    const auto& [ka, ca] = samples_[samples_.size() - 2];
    const auto& [kb, cb] = samples_.back();
    slope = (cb - ca) / static_cast<double>(kb - ka);
  } else {
    slope = samples_[0].second / static_cast<double>(samples_[0].first);
  }
  if (slope < 0.0) slope = 0.0;
  return c0 + slope * static_cast<double>(k - k0);
}

std::string PiecewiseLinearCost::ToString() const {
  std::ostringstream oss;
  oss << "piecewise(" << samples_.size() << " samples, last=("
      << samples_.back().first << "," << samples_.back().second << "))";
  return oss.str();
}

CostFunctionPtr MakePaperGapCost(double epsilon, double budget_c) {
  ABIVM_CHECK_GT(epsilon, 0.0);
  ABIVM_CHECK_LE(epsilon, 1.0);
  ABIVM_CHECK_GT(budget_c, 0.0);
  // f(x) = (eps*x/2)*C up to x = 2/eps (where f = C); one more modification
  // reaches the plateau (1 + eps/2)*C, exactly the capped-affine form with
  // slope eps*C/2, intercept 0, cap 2/eps + 1.
  const double slope = epsilon * budget_c / 2.0;
  const auto cap = static_cast<uint64_t>(std::llround(2.0 / epsilon)) + 1;
  return std::make_shared<AffineCappedCost>(slope, /*b=*/0.0, cap);
}

CostFunctionPtr MakePaperFig1LinearSideCost() {
  // "the server spends roughly 0.25 ms for each tuple of dS"; the tiny
  // intercept keeps the function strictly valid (b >= 0 is required, and
  // a pure a*k works too -- 0 is allowed).
  return std::make_shared<LinearCost>(0.25, 0.0);
}

CostFunctionPtr MakePaperFig1ScanSideCost() {
  // Slope from the two published points c(180) ~= 305 and c(600) ~= 350:
  // (350 - 305) / 420 ~= 0.107; intercept 305 - 0.107*180 ~= 285.7; the
  // plateau sits just above the 350 ms constraint so that batching 600
  // modifications is possible but 610 force a flush.
  return std::make_shared<AffineCappedCost>(0.107, 285.7, 610);
}

bool IsMonotone(const CostFunction& f, uint64_t max_k) {
  double prev = f.Cost(0);
  if (prev != 0.0) return false;
  for (uint64_t k = 1; k <= max_k; ++k) {
    const double cur = f.Cost(k);
    if (cur + kEps < prev) return false;
    prev = cur;
  }
  return true;
}

bool IsSubadditive(const CostFunction& f, uint64_t max_k) {
  if (f.Cost(0) != 0.0) return false;
  std::vector<double> costs(max_k + 1);
  for (uint64_t k = 0; k <= max_k; ++k) costs[k] = f.Cost(k);
  for (uint64_t x = 1; x <= max_k; ++x) {
    for (uint64_t y = x; x + y <= max_k; ++y) {
      if (costs[x + y] > costs[x] + costs[y] + kEps) return false;
    }
  }
  return true;
}

}  // namespace abivm
