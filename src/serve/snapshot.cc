#include "serve/snapshot.h"

#include <cstring>

#include "common/check.h"

namespace abivm::serve {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void MixBytes(uint64_t* h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

void MixU64(uint64_t* h, uint64_t v) { MixBytes(h, &v, sizeof(v)); }

void MixI64(uint64_t* h, int64_t v) { MixBytes(h, &v, sizeof(v)); }

// The raw bit pattern, NOT a rounded rendering: an incrementally
// maintained sum differs from a recomputed one only in rounding order,
// and the digest must pin down the exact doubles the snapshot holds.
void MixDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  MixU64(h, bits);
}

void MixValue(uint64_t* h, const Value& v) {
  MixU64(h, static_cast<uint64_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      MixI64(h, v.AsInt64());
      break;
    case ValueType::kDouble:
      MixDouble(h, v.AsDouble());
      break;
    case ValueType::kString: {
      const std::string& s = v.AsString();
      MixU64(h, s.size());
      MixBytes(h, s.data(), s.size());
      break;
    }
  }
}

}  // namespace

uint64_t DigestViewState(const ViewState& state) {
  uint64_t h = kFnvOffset;
  const auto ordered = state.Snapshot();
  MixU64(&h, ordered.size());
  for (const auto& [key, group] : ordered) {
    MixU64(&h, key.size());
    for (const Value& v : key) MixValue(&h, v);
    MixI64(&h, group.count);
    MixDouble(&h, group.sum);
    MixU64(&h, group.values.size());
    for (const auto& [value, mult] : group.values) {
      MixValue(&h, value);
      MixI64(&h, mult);
    }
  }
  return h;
}

size_t SnapshotRegistry::AddSlot() {
  slots_.push_back(std::make_unique<Slot>());
  return slots_.size() - 1;
}

void SnapshotRegistry::Publish(size_t slot, SnapshotPtr snapshot) {
  ABIVM_CHECK_LT(slot, slots_.size());
  ABIVM_CHECK(snapshot != nullptr);
  Slot& s = *slots_[slot];
  // Swap under the lock, destroy (possibly the last ref to a superseded
  // epoch, possibly a whole ViewState) outside it.
  SnapshotPtr retired;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    retired = std::move(s.current);
    s.current = std::move(snapshot);
  }
}

SnapshotPtr SnapshotRegistry::Load(size_t slot) const {
  ABIVM_CHECK_LT(slot, slots_.size());
  const Slot& s = *slots_[slot];
  std::lock_guard<std::mutex> lk(s.mu);
  return s.current;
}

}  // namespace abivm::serve
