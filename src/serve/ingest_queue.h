// MPSC ingest queue: the write side of the serving subsystem.
//
// Producers enqueue WriteOps (closures over the base-table apply paths);
// the single maintenance thread drains and applies them. Ops are
// closures rather than pre-resolved (table, row) targets because updates
// change RowIds -- only the thread that applies an op, in order, can
// resolve what it touches.
//
// Backpressure is a high-watermark on queue depth. In kBlock mode a full
// queue makes Push wait until the drain side catches up (bounded memory,
// producers absorb the stall); in kReject mode Push returns
// Status::Unavailable immediately (bounded memory AND bounded producer
// latency -- the client retries or sheds the write).

#ifndef ABIVM_SERVE_INGEST_QUEUE_H_
#define ABIVM_SERVE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace abivm::serve {

/// One ingested modification: applied by the maintenance thread against
/// the server's database, in arrival order. Returns the apply status
/// (a failed op is counted and dropped; it does not poison the stream).
using WriteOp = std::function<Status(Database&)>;

/// What Push does when the queue is at its high watermark.
enum class BackpressureMode {
  /// Block the producer until the drain side makes room (or Close).
  kBlock,
  /// Refuse immediately with Status::Unavailable -- caller may retry.
  kReject,
};

class IngestQueue {
 public:
  /// `high_watermark` is the maximum depth Push will grow the queue to;
  /// `on_push` (optional) is invoked after every successful enqueue,
  /// outside the queue lock -- the server uses it to wake its
  /// maintenance loop.
  IngestQueue(size_t high_watermark, BackpressureMode mode,
              std::function<void()> on_push = nullptr);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues `op`, honouring the backpressure mode. Returns
  /// Unavailable when rejected (kReject at the watermark) or when the
  /// queue is closed -- including a kBlock producer woken by Close.
  Status Push(WriteOp op);

  /// Moves up to `max_ops` ops into `*out` (appended), in FIFO order,
  /// waking blocked producers if room opened up. Returns the number
  /// moved. Single consumer: the maintenance thread.
  size_t DrainInto(std::vector<WriteOp>* out, size_t max_ops);

  /// Current depth (racy by nature; for gauges and tests).
  size_t depth() const;

  /// True once Close() ran.
  bool closed() const;

  /// Shuts the queue: every current and future Push fails with
  /// Unavailable, and blocked producers wake immediately. Ops already
  /// queued stay drainable (the server drains-or-drops them on Stop).
  void Close();

 private:
  const size_t high_watermark_;
  const BackpressureMode mode_;
  const std::function<void()> on_push_;

  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::deque<WriteOp> ops_;
  bool closed_ = false;
};

}  // namespace abivm::serve

#endif  // ABIVM_SERVE_INGEST_QUEUE_H_
