// Epoch-published immutable view snapshots -- the read side of the
// serving subsystem.
//
// The maintenance thread is the only writer: after every atomic batch
// commit (and after every coalesced fresh-read flush) it builds a
// ViewSnapshot -- the view content plus the exact watermark frontier the
// content reflects -- and swaps it into the view's slot. A read copies
// the slot's shared_ptr under a per-slot mutex held only for that
// pointer copy (never while the writer computes, maintains, or builds a
// snapshot -- publication itself is just a pointer swap under the same
// mutex), so readers never wait on maintenance work, never see a torn
// view (the object behind the pointer is immutable from the moment it
// is published), and hold their snapshot alive for as long as they keep
// the pointer, no matter how many epochs the writer publishes
// meanwhile.
//
// Why a mutex and not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic
// is itself a lock-bit spinlock (not lock-free), and its load path
// releases that lock with a relaxed RMW -- a by-the-letter data race on
// the pointer member that TSan rightly reports (the serve suite must be
// TSan-clean). An uncontended mutex is the same one-CAS cost with none
// of the undefined behaviour.

#ifndef ABIVM_SERVE_SNAPSHOT_H_
#define ABIVM_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ivm/view_state.h"
#include "storage/table.h"

namespace abivm::serve {

/// One immutable published view image. `positions` / `versions` are the
/// per-base-table watermark frontier at publication: the snapshot's
/// content equals the view evaluated over exactly that snapshot vector
/// (the maintainer invariant), which is what lets a bounded-staleness
/// reader report HOW stale its answer is, per table, instead of a single
/// opaque timestamp.
struct ViewSnapshot {
  /// Per-view publication sequence number, strictly increasing from 1.
  uint64_t epoch = 0;
  /// Delta-log position of the next unprocessed modification, per table.
  std::vector<size_t> positions;
  /// Snapshot version the view reflects, per table.
  std::vector<Version> versions;
  /// The view content at that frontier.
  ViewState state;
  /// DigestViewState(state) at publication. Readers recompute it over
  /// the state they hold; a mismatch would prove a torn or mutated read
  /// (the TSan torture test checks exactly this).
  uint64_t digest = 0;
};

using SnapshotPtr = std::shared_ptr<const ViewSnapshot>;

/// Order-independent-free content digest: FNV-1a over a canonical
/// (ordered) rendering of the state -- group keys in sorted order, each
/// with its count, the raw bit pattern of its sum, and its MIN/MAX value
/// multiset. Two states with identical contents (including identical
/// accumulated-sum doubles) digest identically; any concurrent mutation
/// of the hashed representation changes the digest with overwhelming
/// probability.
uint64_t DigestViewState(const ViewState& state);

/// The per-view publication slots. Readers and the writer share nothing
/// but one mutex-guarded shared_ptr per view, locked only for the
/// pointer copy/swap; reclamation of superseded epochs is the
/// shared_ptr control block's problem, which is what keeps readers
/// independent of the writer's maintenance work.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Registers a view; returns its slot index. Not thread-safe -- call
  /// during setup, before any concurrent Load/Publish.
  size_t AddSlot();

  size_t size() const { return slots_.size(); }

  /// Publishes a new epoch for `slot` (writer side; single writer).
  void Publish(size_t slot, SnapshotPtr snapshot);

  /// The latest published snapshot of `slot`, or nullptr before the
  /// first publication (reader side; any thread; locks the slot only
  /// for the pointer copy).
  SnapshotPtr Load(size_t slot) const;

 private:
  struct Slot {
    mutable std::mutex mu;
    SnapshotPtr current;
  };
  // A mutex is neither copyable nor movable, so slots live behind
  // unique_ptr to keep AddSlot simple.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace abivm::serve

#endif  // ABIVM_SERVE_SNAPSHOT_H_
