#include "serve/view_server.h"

#include <limits>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::serve {

ViewServer::ViewServer(std::unique_ptr<Database> db, ServeOptions options,
                       obs::MetricRegistry* metrics)
    : db_(std::move(db)),
      options_(options),
      group_(db_.get()),
      queue_(options_.ingest_high_watermark, options_.backpressure,
             [this] {
               // Empty critical section: serializes with the loop's
               // predicate check so the notify cannot slip between the
               // check and the sleep (the classic lost-wakeup window).
               { std::lock_guard<std::mutex> lk(mu_); }
               loop_cv_.notify_one();
             }) {
  ABIVM_CHECK(db_ != nullptr);
  ABIVM_CHECK_GT(options_.budget_c, 0.0);
  ABIVM_CHECK_GT(options_.max_drain_per_cycle, 0u);
  if (metrics != nullptr) {
    metrics_ = metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = own_metrics_.get();
  }
  // Intern every serve.* instrument up front: hot paths (readers,
  // producers, the loop) touch only these atomics, never the registry.
  reads_stale_ = &metrics_->counter("serve.reads_stale");
  reads_fresh_ = &metrics_->counter("serve.reads_fresh");
  fresh_served_ = &metrics_->counter("serve.fresh_served");
  flushes_ = &metrics_->counter("serve.flushes");
  flush_failures_ = &metrics_->counter("serve.flush_failures");
  publishes_ = &metrics_->counter("serve.publishes");
  publish_failures_ = &metrics_->counter("serve.publish_failures");
  ingest_ops_ = &metrics_->counter("serve.ingest_ops");
  ingest_errors_ = &metrics_->counter("serve.ingest_errors");
  ingest_rejected_ = &metrics_->counter("serve.ingest_rejected");
  dropped_ops_ = &metrics_->counter("serve.dropped_ops");
  cycles_ = &metrics_->counter("serve.cycles");
  batches_ = &metrics_->counter("serve.batches");
  batch_failures_ = &metrics_->counter("serve.batch_failures");
  budget_violations_ = &metrics_->counter("serve.budget_violations");
  queue_depth_gauge_ = &metrics_->gauge("serve.queue_depth");
  fresh_waiting_gauge_ = &metrics_->gauge("serve.fresh_waiting");
  read_fresh_ms_ = &metrics_->latency("serve.read_fresh_ms");
  flush_ms_ = &metrics_->latency("serve.flush_ms");
}

ViewServer::~ViewServer() { Stop(); }

size_t ViewServer::AddView(ViewDef def, std::unique_ptr<Policy> policy,
                           CostModel model, BindingOptions options) {
  ABIVM_CHECK_MSG(!started_, "AddView after Start");
  ABIVM_CHECK(policy != nullptr);
  ViewMaintainer& m = group_.AddView(std::move(def), options);
  ABIVM_CHECK_MSG(model.n() == m.num_tables(),
                  "cost model arity != view's base-table count");
  const size_t slot = epochs_.AddSlot();
  ABIVM_CHECK_EQ(slot, views_.size());
  m.SetMetrics(metrics_);
  views_.push_back(ServedView{&m, std::move(policy), std::move(model), slot,
                              /*epoch=*/0, /*prev_pending=*/{}});
  return slot;
}

void ViewServer::SetPublishHook(PublishHook hook) {
  ABIVM_CHECK_MSG(!started_, "SetPublishHook after Start");
  publish_hook_ = std::move(hook);
}

void ViewServer::Start() {
  ABIVM_CHECK_MSG(!started_, "Start is one-shot");
  ABIVM_CHECK_MSG(!views_.empty(), "Start with no views");
  // Initial epochs on the caller's thread (the maintainers are still
  // bound to it): ReadStale never returns null once Start returns. No
  // failpoint and no hook here -- this is setup, not maintenance.
  for (ServedView& v : views_) {
    epochs_.Publish(v.slot, BuildSnapshot(v));
    publishes_->Add();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
  }
  maintenance_ = std::thread([this] { MaintenanceLoop(); });
}

void ViewServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || stop_) {
      if (!started_) return;
      // Already stopping/stopped; fall through to join idempotently.
    }
    stop_ = true;
  }
  queue_.Close();
  loop_cv_.notify_all();
  fresh_cv_.notify_all();
  control_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  // The join is a synchronized handoff back to the stopping thread:
  // rebind the maintainers so post-stop introspection (oracle
  // recomputes in tests, final reports) doesn't trip the writer guard.
  for (ServedView& v : views_) v.maintainer->BindWriterToCurrentThread();
}

Status ViewServer::Ingest(WriteOp op) {
  ABIVM_FAULT_POINT(fault::kFpServeEnqueue);
  Status status = queue_.Push(std::move(op));
  if (!status.ok()) {
    ingest_rejected_->Add();
    return status;
  }
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.depth()));
  return status;
}

SnapshotPtr ViewServer::ReadStale(size_t view) const {
  reads_stale_->Add();
  return epochs_.Load(view);
}

Result<SnapshotPtr> ViewServer::ReadFresh(size_t view) {
  ABIVM_CHECK_LT(view, views_.size());
  reads_fresh_->Add();
  Stopwatch sw;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!started_ || stop_) {
      return Status::Unavailable("server not running");
    }
    const uint64_t my = ++fresh_seq_;
    fresh_waiting_gauge_->Add(1);
    loop_cv_.notify_one();
    fresh_cv_.wait(lk, [&] { return fresh_done_ >= my; });
    fresh_waiting_gauge_->Add(-1);
    if (last_ok_flush_seq_ < my) {
      // The flush that covered this ticket failed -- or the server
      // stopped before any flush covered it.
      if (stop_) return Status::Unavailable("server stopped");
      Status failed = last_flush_status_;
      ABIVM_CHECK(!failed.ok());
      return failed;
    }
  }
  read_fresh_ms_->Record(sw.ElapsedMs());
  fresh_served_->Add();
  return epochs_.Load(view);
}

Status ViewServer::RunOnMaintenanceThread(std::function<void()> fn) {
  ABIVM_CHECK(fn != nullptr);
  auto done = std::make_shared<bool>(false);
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_ || stop_) return Status::Unavailable("server not running");
  control_ops_.push_back(ControlOp{std::move(fn), done});
  loop_cv_.notify_one();
  control_cv_.wait(lk, [&] { return *done || stop_; });
  if (!*done) return Status::Unavailable("server stopped");
  return Status::Ok();
}

uint64_t ViewServer::fresh_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fresh_seq_ - fresh_done_;
}

void ViewServer::MaintenanceLoop() {
  // Synchronized handoff: thread creation orders everything the setup
  // thread did before Start; from here on this thread is the writer.
  for (ServedView& v : views_) {
    v.maintainer->BindWriterToCurrentThread();
    v.policy->Reset(v.model, options_.budget_c);
    v.prev_pending = v.maintainer->PendingVec();
  }
  for (;;) {
    uint64_t fresh_target = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      loop_cv_.wait(lk, [this] {
        return stop_ || !control_ops_.empty() ||
               fresh_seq_ > fresh_done_ || queue_.depth() > 0;
      });
      RunControlOps(lk);
      if (stop_) break;
      fresh_target = fresh_seq_;
    }
    cycles_->Add();

    // Drain. A pending fresh reader forces a full drain so the flush
    // below covers every op enqueued before that reader's ticket.
    const bool has_fresh = fresh_target > fresh_done_;
    const size_t max_ops = has_fresh
                               ? std::numeric_limits<size_t>::max()
                               : options_.max_drain_per_cycle;
    drain_scratch_.clear();
    queue_.DrainInto(&drain_scratch_, max_ops);
    ApplyOps(&drain_scratch_);
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.depth()));

    // One policy time step per cycle.
    ++t_;
    for (ServedView& v : views_) {
      if (MaintainView(v)) {
        if (TryPublish(v).ok()) {
          publishes_->Add();
        } else {
          publish_failures_->Add();
        }
      }
      if (v.model.IsFull(v.maintainer->PendingVec(), options_.budget_c)) {
        budget_violations_->Add();
      }
    }

    if (has_fresh) {
      flushes_->Add();
      Stopwatch sw;
      const Status flush = DoFlush();
      flush_ms_->Record(sw.ElapsedMs());
      if (!flush.ok()) flush_failures_->Add();
      {
        std::lock_guard<std::mutex> lk(mu_);
        fresh_done_ = fresh_target;
        if (flush.ok()) {
          last_ok_flush_seq_ = fresh_target;
        } else {
          last_flush_status_ = flush;
        }
      }
      fresh_cv_.notify_all();
    }
  }

  // Shutdown (stop_ observed, mu_ released): drop what's still queued,
  // then release every waiter -- fresh readers not covered by a
  // successful flush report Unavailable, control callers likewise.
  drain_scratch_.clear();
  const size_t dropped =
      queue_.DrainInto(&drain_scratch_, std::numeric_limits<size_t>::max());
  drain_scratch_.clear();
  if (dropped > 0) dropped_ops_->Add(dropped);
  {
    std::lock_guard<std::mutex> lk(mu_);
    fresh_done_ = fresh_seq_;
    control_ops_.clear();
  }
  fresh_cv_.notify_all();
  control_cv_.notify_all();
}

void ViewServer::RunControlOps(std::unique_lock<std::mutex>& lk) {
  while (!control_ops_.empty()) {
    ControlOp op = std::move(control_ops_.front());
    control_ops_.pop_front();
    lk.unlock();
    op.fn();
    lk.lock();
    *op.done = true;
    control_cv_.notify_all();
  }
}

size_t ViewServer::ApplyOps(std::vector<WriteOp>* ops) {
  size_t applied = 0;
  for (WriteOp& op : *ops) {
    const Status status = op(*db_);
    ingest_ops_->Add();
    if (status.ok()) {
      ++applied;
    } else {
      ingest_errors_->Add();
    }
  }
  ops->clear();
  return applied;
}

bool ViewServer::MaintainView(ServedView& v) {
  ViewMaintainer& m = *v.maintainer;
  const StateVec pre = m.PendingVec();
  const StateVec arrivals = SubVec(pre, v.prev_pending);
  const StateVec action = v.policy->Act(t_, pre, arrivals);
  ABIVM_CHECK_MSG(FitsWithin(action, pre),
                  "policy action exceeds pending state");
  bool committed = false;
  for (size_t i = 0; i < action.size(); ++i) {
    if (action[i] == 0) continue;
    BatchResult result;
    const Status status = m.ProcessBatchChecked(i, action[i], &result);
    batches_->Add();
    if (status.ok()) {
      committed = true;
    } else {
      batch_failures_->Add();
    }
  }
  v.prev_pending = m.PendingVec();
  return committed;
}

Status ViewServer::TryPublish(ServedView& v) {
  ABIVM_FAULT_POINT(fault::kFpServePublish);
  SnapshotPtr snapshot = BuildSnapshot(v);
  epochs_.Publish(v.slot, snapshot);
  if (publish_hook_) publish_hook_(v.slot, *snapshot, *v.maintainer);
  return Status::Ok();
}

Status ViewServer::DoFlush() {
  ABIVM_FAULT_POINT(fault::kFpServeFlush);
  for (ServedView& v : views_) {
    const Status refreshed = v.maintainer->RefreshAllChecked();
    // A failed refresh still committed a prefix of batches, so the
    // arrival baseline must resync either way.
    v.prev_pending = v.maintainer->PendingVec();
    if (!refreshed.ok()) return refreshed;
    const Status published = TryPublish(v);
    if (!published.ok()) {
      publish_failures_->Add();
      return published;
    }
    publishes_->Add();
  }
  return Status::Ok();
}

SnapshotPtr ViewServer::BuildSnapshot(ServedView& v) {
  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->epoch = ++v.epoch;
  const ViewMaintainer& m = *v.maintainer;
  const size_t n = m.num_tables();
  snapshot->positions.reserve(n);
  snapshot->versions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    snapshot->positions.push_back(m.watermark_position(i));
    snapshot->versions.push_back(m.watermark_version(i));
  }
  snapshot->state = m.state();
  snapshot->digest = DigestViewState(snapshot->state);
  return snapshot;
}

}  // namespace abivm::serve
