// ViewServer: the serving subsystem. Owns the database, a ViewGroup of
// maintainers, and one maintenance policy per view; serves concurrent
// clients against the single-writer maintenance loop.
//
// Architecture (one writer, many readers):
//
//   * ONE maintenance thread owns every mutation: it drains the MPSC
//     ingest queue, applies WriteOps to the base tables, runs each
//     view's policy (the paper's batching decision under budget C),
//     processes the chosen batches, and publishes an immutable snapshot
//     per committed view into the SnapshotRegistry. The ViewMaintainer
//     single-writer assertions make any violation of this discipline
//     fail fast instead of racing.
//
//   * Readers never touch maintenance state. ReadStale copies one
//     shared_ptr under a per-view slot lock held only for the pointer
//     copy -- a bounded-staleness answer at the last
//     published epoch, carrying the exact per-table watermark frontier
//     so the client knows HOW stale. ReadFresh asks for the on-demand
//     refresh contract: the residue at any instant is <= C by the
//     maintenance invariant, so one flush of everything pending yields
//     a fully refreshed view within the response-time budget.
//
//   * Concurrent ReadFresh calls COALESCE (the group-commit analogy):
//     each waiter takes a generation ticket; the loop flushes once for
//     the highest ticket outstanding and that single flush satisfies
//     every queued waiter. k concurrent fresh readers cost one flush,
//     not k.
//
//   * Ingest backpressure: the queue has a high watermark; kBlock makes
//     producers wait, kReject bounces them with Status::Unavailable.
//
// Failure semantics: a failed WriteOp is counted and dropped (the
// stream continues); a failed batch leaves the view exactly as before
// (ProcessBatchChecked is atomic) and is retried by a later cycle; a
// failed flush fails the fresh readers it covered while STALE reads
// keep serving the last published epoch -- serving degrades, it does
// not stop. Failpoint sites: serve.enqueue (producer thread),
// serve.flush / serve.publish (maintenance thread; arm them via
// RunOnMaintenanceThread because failpoint registries are thread-local).

#ifndef ABIVM_SERVE_VIEW_SERVER_H_
#define ABIVM_SERVE_VIEW_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/policy.h"
#include "ivm/view_group.h"
#include "obs/metrics.h"
#include "serve/ingest_queue.h"
#include "serve/snapshot.h"

namespace abivm::serve {

struct ServeOptions {
  /// Response-time budget C: each view's policy is Reset with it, and
  /// the loop counts serve.budget_violations whenever a view's pending
  /// cost exceeds it after the policy acted.
  double budget_c = 1.0;
  /// Ingest queue high watermark (maximum queued WriteOps).
  size_t ingest_high_watermark = 1024;
  /// What Ingest does at the watermark.
  BackpressureMode backpressure = BackpressureMode::kBlock;
  /// Ops applied per maintenance cycle when no fresh reader is waiting
  /// (a pending fresh reader makes the cycle drain everything, so the
  /// flush covers every op enqueued before the reader arrived).
  size_t max_drain_per_cycle = 256;
};

class ViewServer {
 public:
  /// Takes ownership of `db` (already loaded with base data). Metrics
  /// are interned into `metrics` when given, else into a private
  /// registry reachable via this->metrics().
  ViewServer(std::unique_ptr<Database> db, ServeOptions options,
             obs::MetricRegistry* metrics = nullptr);
  ~ViewServer();

  ViewServer(const ViewServer&) = delete;
  ViewServer& operator=(const ViewServer&) = delete;

  /// Setup-only access to the owned database (bulk loads, index
  /// creation). After Start, all writes MUST go through Ingest.
  Database& db() { return *db_; }

  /// Registers a view with its own policy and cost model; returns the
  /// view handle used by ReadStale/ReadFresh. Setup-only (pre-Start).
  /// The policy is Reset(model, budget_c) when the loop starts.
  size_t AddView(ViewDef def, std::unique_ptr<Policy> policy,
                 CostModel model, BindingOptions options = {});

  size_t num_views() const { return views_.size(); }

  /// Spawns the maintenance thread. Every registered view gets an
  /// initial epoch published first, so ReadStale never returns null
  /// after Start returns.
  void Start();

  /// Stops the maintenance loop: closes the queue (blocked producers
  /// wake with Unavailable), fails outstanding fresh readers with
  /// Unavailable, joins the thread. Idempotent. Ops still queued at
  /// stop are dropped and counted (serve.dropped_ops).
  void Stop();

  bool started() const { return started_; }

  /// Enqueues one write (producer side, any thread). Applies
  /// backpressure per ServeOptions; carries the serve.enqueue
  /// failpoint. The op itself runs later, on the maintenance thread.
  Status Ingest(WriteOp op);

  /// Bounded-staleness read: the latest published epoch of `view`, one
  /// pointer copy under the slot lock, never waiting on maintenance
  /// work. The snapshot reports its
  /// watermark frontier (positions/versions) -- the bound on staleness.
  SnapshotPtr ReadStale(size_t view) const;

  /// Fresh read: waits until a flush covering this call completes, then
  /// returns the snapshot published by it (every watermark at its log
  /// head as of the flush). Concurrent callers coalesce into one flush.
  /// Fails with the flush's error when fault injection (serve.flush) or
  /// a batch failure broke that flush, and with Unavailable when the
  /// server is stopped while waiting.
  Result<SnapshotPtr> ReadFresh(size_t view);

  /// Runs `fn` on the maintenance thread and waits for it to finish.
  /// This is how tests arm the maintenance-side failpoints
  /// (serve.flush, serve.publish): registries are thread-local, so the
  /// arming must execute on the thread that hits the site. Unavailable
  /// when the server is not running.
  Status RunOnMaintenanceThread(std::function<void()> fn);

  /// Test hook, setup-only: invoked on the maintenance thread after
  /// every post-batch / post-flush publication (not the initial Start
  /// publication), with the published snapshot and the maintainer it
  /// came from -- at that instant the maintainer's watermarks equal the
  /// snapshot's, so the hook may run the recompute oracle.
  using PublishHook = std::function<void(size_t view, const ViewSnapshot&,
                                         const ViewMaintainer&)>;
  void SetPublishHook(PublishHook hook);

  /// Fresh requests not yet covered by a finished flush (tests use this
  /// to wait for k readers to be queued before releasing the loop).
  uint64_t fresh_pending() const;

  /// The registry serve.* metrics intern into.
  obs::MetricRegistry& metrics() { return *metrics_; }

  /// The maintainer behind `view` -- setup/stopped introspection only.
  /// While the server runs the maintenance thread owns it; a concurrent
  /// mutating (or workspace-touching) call trips the writer assertion.
  const ViewMaintainer& view_maintainer(size_t view) const {
    ABIVM_CHECK_LT(view, views_.size());
    return *views_[view].maintainer;
  }

 private:
  struct ServedView {
    ViewMaintainer* maintainer = nullptr;
    std::unique_ptr<Policy> policy;
    CostModel model;
    size_t slot = 0;
    uint64_t epoch = 0;
    /// Pending counts after this view's last maintenance step; the next
    /// step's arrivals d_t are current pending minus this (pending only
    /// grows by arrivals and shrinks by this thread's own actions).
    StateVec prev_pending;
  };

  void MaintenanceLoop();
  void RunControlOps(std::unique_lock<std::mutex>& lk);
  // Applies drained ops; returns how many applied cleanly.
  size_t ApplyOps(std::vector<WriteOp>* ops);
  // Policy step + batch processing for one view; true if any batch
  // committed (so the view needs a publication).
  bool MaintainView(ServedView& v);
  // serve.publish failpoint + snapshot build + slot store + hook.
  Status TryPublish(ServedView& v);
  // serve.flush failpoint + RefreshAllChecked + publish, all views.
  Status DoFlush();
  SnapshotPtr BuildSnapshot(ServedView& v);

  std::unique_ptr<Database> db_;
  const ServeOptions options_;
  std::unique_ptr<obs::MetricRegistry> own_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;

  ViewGroup group_;
  std::vector<ServedView> views_;
  SnapshotRegistry epochs_;
  IngestQueue queue_;
  PublishHook publish_hook_;

  std::thread maintenance_;
  bool started_ = false;

  // Loop/reader coordination. mu_ guards everything below it; the
  // ingest queue has its own lock (its on_push wake takes mu_ briefly
  // so the loop's predicate re-check cannot miss the notification).
  mutable std::mutex mu_;
  std::condition_variable loop_cv_;   // maintenance thread waits
  std::condition_variable fresh_cv_;  // ReadFresh waiters
  bool stop_ = false;
  // Fresh-read coalescing generations: a ReadFresh takes ticket
  // ++fresh_seq_; the loop flushes for the highest ticket outstanding
  // and advances fresh_done_ to it -- one flush covers every ticket in
  // (previous done, target]. last_ok_flush_seq_ is the highest ticket
  // covered by a SUCCESSFUL flush; a woken waiter above it reports
  // last_flush_status_ instead of serving.
  uint64_t fresh_seq_ = 0;
  uint64_t fresh_done_ = 0;
  uint64_t last_ok_flush_seq_ = 0;
  Status last_flush_status_ = Status::Ok();
  // Control ops for RunOnMaintenanceThread. The completion flag is
  // shared: on a stopped server the caller may return (Unavailable)
  // while the op is still queued, so the queue entry must not dangle.
  struct ControlOp {
    std::function<void()> fn;
    std::shared_ptr<bool> done;
  };
  std::deque<ControlOp> control_ops_;
  std::condition_variable control_cv_;

  // Maintenance clock (policy time steps) -- loop thread only.
  TimeStep t_ = 0;
  // Scratch reused across cycles -- loop thread only.
  std::vector<WriteOp> drain_scratch_;

  // Interned serve.* instruments (constructor; hot paths touch only
  // these atomics, never the registry map).
  obs::Counter* reads_stale_ = nullptr;
  obs::Counter* reads_fresh_ = nullptr;
  obs::Counter* fresh_served_ = nullptr;
  obs::Counter* flushes_ = nullptr;
  obs::Counter* flush_failures_ = nullptr;
  obs::Counter* publishes_ = nullptr;
  obs::Counter* publish_failures_ = nullptr;
  obs::Counter* ingest_ops_ = nullptr;
  obs::Counter* ingest_errors_ = nullptr;
  obs::Counter* ingest_rejected_ = nullptr;
  obs::Counter* dropped_ops_ = nullptr;
  obs::Counter* cycles_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* batch_failures_ = nullptr;
  obs::Counter* budget_violations_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* fresh_waiting_gauge_ = nullptr;
  obs::LatencyHistogram* read_fresh_ms_ = nullptr;
  obs::LatencyHistogram* flush_ms_ = nullptr;
};

}  // namespace abivm::serve

#endif  // ABIVM_SERVE_VIEW_SERVER_H_
