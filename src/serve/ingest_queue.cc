#include "serve/ingest_queue.h"

#include <utility>

#include "common/check.h"

namespace abivm::serve {

IngestQueue::IngestQueue(size_t high_watermark, BackpressureMode mode,
                         std::function<void()> on_push)
    : high_watermark_(high_watermark),
      mode_(mode),
      on_push_(std::move(on_push)) {
  ABIVM_CHECK_GT(high_watermark_, 0u);
}

Status IngestQueue::Push(WriteOp op) {
  ABIVM_CHECK(op != nullptr);
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (closed_) return Status::Unavailable("ingest queue closed");
    if (ops_.size() >= high_watermark_) {
      if (mode_ == BackpressureMode::kReject) {
        return Status::Unavailable("ingest queue at high watermark");
      }
      can_push_.wait(lk, [this] {
        return closed_ || ops_.size() < high_watermark_;
      });
      if (closed_) return Status::Unavailable("ingest queue closed");
    }
    ops_.push_back(std::move(op));
  }
  if (on_push_) on_push_();
  return Status::Ok();
}

size_t IngestQueue::DrainInto(std::vector<WriteOp>* out, size_t max_ops) {
  ABIVM_CHECK(out != nullptr);
  size_t moved = 0;
  bool opened_room = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const bool was_full = ops_.size() >= high_watermark_;
    while (moved < max_ops && !ops_.empty()) {
      out->push_back(std::move(ops_.front()));
      ops_.pop_front();
      ++moved;
    }
    opened_room = was_full && ops_.size() < high_watermark_;
  }
  if (opened_room) can_push_.notify_all();
  return moved;
}

size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ops_.size();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  can_push_.notify_all();
}

}  // namespace abivm::serve
