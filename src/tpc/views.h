// Predefined view definitions used by the paper's experiments and the
// examples, plus the index layouts that create the cost asymmetry.

#ifndef ABIVM_TPC_VIEWS_H_
#define ABIVM_TPC_VIEWS_H_

#include "ivm/view_def.h"
#include "storage/database.h"

namespace abivm {

/// The paper's Section 5 evaluation view:
///   SELECT MIN(ps_supplycost)
///   FROM partsupp, supplier, nation, region
///   WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
///     AND n_regionkey = r_regionkey AND r_name = 'MIDDLE EAST';
ViewDef MakePaperMinView();

/// The Figure 1 two-table join R |x| S with R = supplier (indexed on the
/// join attribute) and S = partsupp (not indexed): an SPJ view projecting
/// the join keys and supplycost.
ViewDef MakeTwoWayJoinView();

/// Creates the index layout for the paper's experiments: indexes on the
/// small dimension join columns (s_suppkey, n_nationkey, r_regionkey) and
/// deliberately NO index on ps_suppkey, so supplier deltas must scan
/// partsupp while partsupp deltas probe indexes.
void CreatePaperIndexes(Database* db);

/// A sales view over the optional CUSTOMER/ORDERS pipeline, used by the
/// warehouse example: SUM(o_totalprice) grouped by c_mktsegment.
ViewDef MakeSalesBySegmentView();

}  // namespace abivm

#endif  // ABIVM_TPC_VIEWS_H_
