#include "tpc/views.h"

#include "tpc/tpc_gen.h"

namespace abivm {

ViewDef MakePaperMinView() {
  ViewDef def;
  def.name = "min_supplycost_middle_east";
  def.tables = {kPartSupp, kSupplier, kNation, kRegion};
  def.joins = {
      {{kSupplier, "s_suppkey"}, {kPartSupp, "ps_suppkey"}},
      {{kSupplier, "s_nationkey"}, {kNation, "n_nationkey"}},
      {{kNation, "n_regionkey"}, {kRegion, "r_regionkey"}},
  };
  def.predicates = {
      {{kRegion, "r_name"}, CompareOp::kEq, Value("MIDDLE EAST")},
  };
  def.aggregate = AggregateDef{AggKind::kMin, {kPartSupp, "ps_supplycost"}};
  return def;
}

ViewDef MakeTwoWayJoinView() {
  ViewDef def;
  def.name = "part_partsupp_join";
  def.tables = {kPartSupp, kPart};
  def.joins = {
      {{kPart, "p_partkey"}, {kPartSupp, "ps_partkey"}},
  };
  def.output_columns = {
      {kPartSupp, "ps_partkey"},
      {kPartSupp, "ps_suppkey"},
      {kPartSupp, "ps_supplycost"},
      {kPart, "p_retailprice"},
  };
  return def;
}

void CreatePaperIndexes(Database* db) {
  ABIVM_CHECK(db != nullptr);
  db->table(kSupplier).CreateHashIndex("s_suppkey");
  db->table(kNation).CreateHashIndex("n_nationkey");
  db->table(kRegion).CreateHashIndex("r_regionkey");
  db->table(kPart).CreateHashIndex("p_partkey");
  // Intentionally NO index on partsupp's join columns (ps_suppkey,
  // ps_partkey): supplier/part deltas must scan partsupp (high fixed
  // cost, great batching benefit) while partsupp deltas probe the
  // dimension indexes (cheap, linear) -- the asymmetry the paper
  // exploits. This mirrors the paper's Figure 1 setup: "R is indexed on
  // the join attribute while S is not".
}

ViewDef MakeSalesBySegmentView() {
  ViewDef def;
  def.name = "sales_by_segment";
  def.tables = {kOrders, kCustomer};
  def.joins = {
      {{kOrders, "o_custkey"}, {kCustomer, "c_custkey"}},
  };
  def.group_by = {{kCustomer, "c_mktsegment"}};
  def.aggregate = AggregateDef{AggKind::kSum, {kOrders, "o_totalprice"}};
  return def;
}

}  // namespace abivm
