#include "tpc/arrivals_gen.h"

#include <cmath>

namespace abivm {

ArrivalSequence MakePaperNonUniformArrivals(size_t n, TimeStep horizon,
                                            double p, double mu,
                                            double sigma, Rng& rng) {
  ABIVM_CHECK_GE(n, size_t{1});
  ABIVM_CHECK_GE(horizon, 0);
  ABIVM_CHECK_GE(p, 0.0);
  ABIVM_CHECK_LE(p, 1.0);
  ABIVM_CHECK_GT(sigma, 0.0);
  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(horizon) + 1);
  for (TimeStep t = 0; t <= horizon; ++t) {
    StateVec d(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) continue;
      // Sample ceil(X) conditioned on X > 0 by rejection.
      double x = rng.Normal(mu, sigma);
      while (x <= 0.0) x = rng.Normal(mu, sigma);
      d[i] = static_cast<Count>(std::ceil(x));
    }
    steps.push_back(std::move(d));
  }
  return ArrivalSequence(std::move(steps));
}

ArrivalSequence MakePoissonArrivals(const std::vector<double>& rates,
                                    TimeStep horizon, Rng& rng) {
  ABIVM_CHECK(!rates.empty());
  ABIVM_CHECK_GE(horizon, 0);
  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(horizon) + 1);
  for (TimeStep t = 0; t <= horizon; ++t) {
    StateVec d(rates.size(), 0);
    for (size_t i = 0; i < rates.size(); ++i) {
      d[i] = rng.Poisson(rates[i]);
    }
    steps.push_back(std::move(d));
  }
  return ArrivalSequence(std::move(steps));
}

ArrivalSequence MakeBurstyArrivals(size_t n, TimeStep horizon,
                                   TimeStep on_steps, TimeStep off_steps,
                                   Count rate_on) {
  ABIVM_CHECK_GE(n, size_t{1});
  ABIVM_CHECK_GE(horizon, 0);
  ABIVM_CHECK_GE(on_steps, 1);
  ABIVM_CHECK_GE(off_steps, 0);
  const TimeStep period = on_steps + off_steps;
  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(horizon) + 1);
  for (TimeStep t = 0; t <= horizon; ++t) {
    const bool on = (t % period) < on_steps;
    steps.push_back(StateVec(n, on ? rate_on : 0));
  }
  return ArrivalSequence(std::move(steps));
}

}  // namespace abivm
