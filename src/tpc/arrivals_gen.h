// Arrival-process generators producing ArrivalSequence inputs for the
// scheduler: the paper's Section 5 non-uniform model plus Poisson and
// bursty processes for extra experiments.

#ifndef ABIVM_TPC_ARRIVALS_GEN_H_
#define ABIVM_TPC_ARRIVALS_GEN_H_

#include "common/random.h"
#include "core/arrivals.h"

namespace abivm {

/// The paper's non-uniform model: independently per table and per step,
/// with probability p at least one modification arrives, and the count d
/// follows Pr{ceil(X) = d | X > 0} for X ~ Normal(mu, sigma^2).
/// Slow/fast streams use p = 0.5 / 0.9; stable/unstable use sigma = 1 / 5;
/// mu stays at 1 (Section 5).
ArrivalSequence MakePaperNonUniformArrivals(size_t n, TimeStep horizon,
                                            double p, double mu,
                                            double sigma, Rng& rng);

/// Independent Poisson(rates[i]) arrivals per table per step.
ArrivalSequence MakePoissonArrivals(const std::vector<double>& rates,
                                    TimeStep horizon, Rng& rng);

/// On/off bursts: `rate_on` arrivals per step for `on_steps`, then silence
/// for `off_steps`, repeating (all tables share the phase).
ArrivalSequence MakeBurstyArrivals(size_t n, TimeStep horizon,
                                   TimeStep on_steps, TimeStep off_steps,
                                   Count rate_on);

}  // namespace abivm

#endif  // ABIVM_TPC_ARRIVALS_GEN_H_
