#include "tpc/tpc_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace abivm {

namespace {

struct NationSpec {
  const char* name;
  int64_t regionkey;
};

constexpr const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA",
                                         "EUROPE", "MIDDLE EAST"};

// The 25 TPC nations with their official region assignments; region 4 is
// MIDDLE EAST (EGYPT, IRAN, IRAQ, JORDAN, SAUDI ARABIA).
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"RUSSIA", 3},
    {"SAUDI ARABIA", 4}, {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},{"VIETNAM", 2},
};

uint64_t ScaledCount(double base, double sf) {
  const double scaled = base * sf;
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(scaled)));
}

std::string Comment(Rng& rng) { return rng.AlphaString(12); }

}  // namespace

uint64_t TpcSupplierCount(double sf) { return ScaledCount(10'000, sf); }
uint64_t TpcPartCount(double sf) { return ScaledCount(200'000, sf); }
uint64_t TpcPartSuppCount(double sf) { return 4 * TpcPartCount(sf); }
uint64_t TpcCustomerCount(double sf) { return ScaledCount(150'000, sf); }

void GenerateTpcDatabase(Database* db, const TpcGenOptions& options) {
  ABIVM_CHECK(db != nullptr);
  ABIVM_CHECK_GT(options.scale_factor, 0.0);
  Rng rng(options.seed);

  // --- region ---
  Table& region = db->CreateTable(
      kRegion, Schema({{"r_regionkey", ValueType::kInt64},
                       {"r_name", ValueType::kString},
                       {"r_comment", ValueType::kString}}));
  for (int64_t r = 0; r < 5; ++r) {
    db->BulkLoad(region, {Value(r), Value(std::string(kRegionNames[r])),
                          Value(Comment(rng))});
  }

  // --- nation ---
  Table& nation = db->CreateTable(
      kNation, Schema({{"n_nationkey", ValueType::kInt64},
                       {"n_name", ValueType::kString},
                       {"n_regionkey", ValueType::kInt64},
                       {"n_comment", ValueType::kString}}));
  for (int64_t n = 0; n < 25; ++n) {
    db->BulkLoad(nation,
                 {Value(n), Value(std::string(kNations[n].name)),
                  Value(kNations[n].regionkey), Value(Comment(rng))});
  }

  // --- supplier ---
  const int64_t suppliers =
      static_cast<int64_t>(TpcSupplierCount(options.scale_factor));
  Table& supplier = db->CreateTable(
      kSupplier, Schema({{"s_suppkey", ValueType::kInt64},
                         {"s_name", ValueType::kString},
                         {"s_address", ValueType::kString},
                         {"s_nationkey", ValueType::kInt64},
                         {"s_phone", ValueType::kString},
                         {"s_acctbal", ValueType::kDouble},
                         {"s_comment", ValueType::kString}}));
  for (int64_t s = 1; s <= suppliers; ++s) {
    db->BulkLoad(supplier,
                 {Value(s), Value("Supplier#" + std::to_string(s)),
                  Value(rng.AlphaString(10)), Value(rng.UniformInt(0, 24)),
                  Value(rng.AlphaString(10)),
                  Value(rng.UniformDouble(-999.99, 9999.99)),
                  Value(Comment(rng))});
  }

  // --- part ---
  const int64_t parts =
      static_cast<int64_t>(TpcPartCount(options.scale_factor));
  Table& part = db->CreateTable(
      kPart, Schema({{"p_partkey", ValueType::kInt64},
                     {"p_name", ValueType::kString},
                     {"p_mfgr", ValueType::kString},
                     {"p_brand", ValueType::kString},
                     {"p_type", ValueType::kString},
                     {"p_size", ValueType::kInt64},
                     {"p_container", ValueType::kString},
                     {"p_retailprice", ValueType::kDouble},
                     {"p_comment", ValueType::kString}}));
  for (int64_t p = 1; p <= parts; ++p) {
    const int64_t mfgr = rng.UniformInt(1, 5);
    db->BulkLoad(
        part,
        {Value(p), Value("part-" + rng.AlphaString(8)),
         Value("Manufacturer#" + std::to_string(mfgr)),
         Value("Brand#" + std::to_string(mfgr * 10 + rng.UniformInt(1, 5))),
         Value(rng.AlphaString(12)), Value(rng.UniformInt(1, 50)),
         Value(rng.AlphaString(8)),
         Value(900.0 + static_cast<double>(p % 1000)),
         Value(Comment(rng))});
  }

  // --- partsupp: each part supplied by 4 distinct suppliers ---
  Table& partsupp = db->CreateTable(
      kPartSupp, Schema({{"ps_partkey", ValueType::kInt64},
                         {"ps_suppkey", ValueType::kInt64},
                         {"ps_availqty", ValueType::kInt64},
                         {"ps_supplycost", ValueType::kDouble},
                         {"ps_comment", ValueType::kString}}));
  for (int64_t p = 1; p <= parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      // dbgen's exact spreading of suppliers over parts:
      // (p + i*(S/4 + (p-1)/S)) mod S + 1.
      const int64_t s =
          (p + i * (suppliers / 4 + (p - 1) / suppliers)) % suppliers + 1;
      db->BulkLoad(partsupp,
                   {Value(p), Value(s), Value(rng.UniformInt(1, 9999)),
                    Value(rng.UniformDouble(1.0, 1000.0)),
                    Value(Comment(rng))});
    }
  }

  if (!options.include_sales_pipeline) return;

  // --- customer ---
  const int64_t customers =
      static_cast<int64_t>(TpcCustomerCount(options.scale_factor));
  Table& customer = db->CreateTable(
      kCustomer, Schema({{"c_custkey", ValueType::kInt64},
                         {"c_name", ValueType::kString},
                         {"c_address", ValueType::kString},
                         {"c_nationkey", ValueType::kInt64},
                         {"c_phone", ValueType::kString},
                         {"c_acctbal", ValueType::kDouble},
                         {"c_mktsegment", ValueType::kString},
                         {"c_comment", ValueType::kString}}));
  static constexpr const char* kSegments[5] = {
      "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
  for (int64_t c = 1; c <= customers; ++c) {
    db->BulkLoad(customer,
                 {Value(c), Value("Customer#" + std::to_string(c)),
                  Value(rng.AlphaString(10)), Value(rng.UniformInt(0, 24)),
                  Value(rng.AlphaString(10)),
                  Value(rng.UniformDouble(-999.99, 9999.99)),
                  Value(std::string(kSegments[rng.UniformInt(0, 4)])),
                  Value(Comment(rng))});
  }

  // --- orders + lineitem ---
  Table& orders = db->CreateTable(
      kOrders, Schema({{"o_orderkey", ValueType::kInt64},
                       {"o_custkey", ValueType::kInt64},
                       {"o_orderstatus", ValueType::kString},
                       {"o_totalprice", ValueType::kDouble},
                       {"o_orderdate", ValueType::kInt64},
                       {"o_orderpriority", ValueType::kString},
                       {"o_shippriority", ValueType::kInt64},
                       {"o_comment", ValueType::kString}}));
  Table& lineitem = db->CreateTable(
      kLineItem, Schema({{"l_orderkey", ValueType::kInt64},
                         {"l_partkey", ValueType::kInt64},
                         {"l_suppkey", ValueType::kInt64},
                         {"l_linenumber", ValueType::kInt64},
                         {"l_quantity", ValueType::kDouble},
                         {"l_extendedprice", ValueType::kDouble},
                         {"l_discount", ValueType::kDouble},
                         {"l_tax", ValueType::kDouble},
                         {"l_shipdate", ValueType::kInt64},
                         {"l_comment", ValueType::kString}}));
  const int64_t order_count = customers * 10;
  int64_t line_counter = 0;
  for (int64_t o = 1; o <= order_count; ++o) {
    const int64_t lines = rng.UniformInt(1, 7);
    double total = 0.0;
    for (int64_t l = 1; l <= lines; ++l) {
      const double qty = static_cast<double>(rng.UniformInt(1, 50));
      const double price = qty * rng.UniformDouble(900.0, 1900.0);
      total += price;
      db->BulkLoad(lineitem,
                   {Value(o), Value(rng.UniformInt(1, parts)),
                    Value(rng.UniformInt(1, suppliers)), Value(l),
                    Value(qty), Value(price),
                    Value(rng.UniformDouble(0.0, 0.1)),
                    Value(rng.UniformDouble(0.0, 0.08)),
                    Value(rng.UniformInt(0, 2556)), Value(Comment(rng))});
      ++line_counter;
    }
    db->BulkLoad(orders,
                 {Value(o), Value(rng.UniformInt(1, customers)),
                  Value(std::string(rng.Bernoulli(0.5) ? "O" : "F")),
                  Value(total), Value(rng.UniformInt(0, 2556)),
                  Value(rng.AlphaString(8)), Value(int64_t{0}),
                  Value(Comment(rng))});
  }
  (void)line_counter;
}

}  // namespace abivm
