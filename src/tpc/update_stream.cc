#include "tpc/update_stream.h"

#include <cstring>

#include "tpc/tpc_gen.h"

namespace abivm {

namespace {

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING",
                                      "FURNITURE", "MACHINERY",
                                      "HOUSEHOLD"};

}  // namespace

TpcUpdater::TpcUpdater(Database* db, uint64_t seed)
    : db_(db), rng_(seed) {
  ABIVM_CHECK(db != nullptr);
  if (db_->HasTable(kOrders)) {
    next_order_key_ =
        static_cast<int64_t>(db_->table(kOrders).live_row_count()) + 1;
  }
}

void TpcUpdater::UpdatePartSuppSupplycost() {
  Table& partsupp = db_->table(kPartSupp);
  const RowId id = partsupp.SampleLiveRow(rng_);
  Row row = partsupp.RowAt(id).row;
  const size_t cost_col = partsupp.schema().ColumnIndex("ps_supplycost");
  row[cost_col] = Value(rng_.UniformDouble(1.0, 1000.0));
  db_->ApplyUpdate(partsupp, id, std::move(row));
}

void TpcUpdater::UpdateSupplierNationkey() {
  Table& supplier = db_->table(kSupplier);
  const RowId id = supplier.SampleLiveRow(rng_);
  Row row = supplier.RowAt(id).row;
  const size_t nation_col = supplier.schema().ColumnIndex("s_nationkey");
  row[nation_col] = Value(rng_.UniformInt(0, 24));
  db_->ApplyUpdate(supplier, id, std::move(row));
}

void TpcUpdater::UpdatePartRetailprice() {
  Table& part = db_->table(kPart);
  const RowId id = part.SampleLiveRow(rng_);
  Row row = part.RowAt(id).row;
  const size_t price_col = part.schema().ColumnIndex("p_retailprice");
  row[price_col] = Value(rng_.UniformDouble(900.0, 2000.0));
  db_->ApplyUpdate(part, id, std::move(row));
}

void TpcUpdater::ApplyPaperModification(const std::string& table_name) {
  if (table_name == kPartSupp) {
    UpdatePartSuppSupplycost();
  } else if (table_name == kSupplier) {
    UpdateSupplierNationkey();
  } else if (table_name == kPart) {
    UpdatePartRetailprice();
  } else {
    ABIVM_CHECK_MSG(false,
                    "no paper modification defined for " << table_name);
  }
}

void TpcUpdater::InsertPartSupp() {
  Table& partsupp = db_->table(kPartSupp);
  Table& part = db_->table(kPart);
  Table& supplier = db_->table(kSupplier);
  const Row& p = part.RowAt(part.SampleLiveRow(rng_)).row;
  const Row& s = supplier.RowAt(supplier.SampleLiveRow(rng_)).row;
  db_->ApplyInsert(partsupp,
                   {Value(p[0].AsInt64()), Value(s[0].AsInt64()),
                    Value(rng_.UniformInt(1, 9999)),
                    Value(rng_.UniformDouble(1.0, 1000.0)),
                    Value(rng_.AlphaString(12))});
}

void TpcUpdater::DeletePartSupp() {
  Table& partsupp = db_->table(kPartSupp);
  db_->ApplyDelete(partsupp, partsupp.SampleLiveRow(rng_));
}

void TpcUpdater::InsertOrder() {
  Table& orders = db_->table(kOrders);
  Table& customer = db_->table(kCustomer);
  const Row& cust = customer.RowAt(customer.SampleLiveRow(rng_)).row;
  db_->ApplyInsert(
      orders,
      {Value(next_order_key_++), Value(cust[0].AsInt64()),
       Value(std::string(rng_.Bernoulli(0.5) ? "O" : "F")),
       Value(rng_.UniformDouble(1000.0, 300000.0)),
       Value(rng_.UniformInt(0, 2556)), Value(rng_.AlphaString(8)),
       Value(int64_t{0}), Value(rng_.AlphaString(12))});
}

void TpcUpdater::UpdateCustomerSegment() {
  Table& customer = db_->table(kCustomer);
  const RowId id = customer.SampleLiveRow(rng_);
  Row row = customer.RowAt(id).row;
  const size_t seg = customer.schema().ColumnIndex("c_mktsegment");
  row[seg] = Value(std::string(kSegments[rng_.UniformInt(0, 4)]));
  db_->ApplyUpdate(customer, id, std::move(row));
}

std::string TpcUpdater::SaveState() const {
  const std::array<uint64_t, 4> s = rng_.SaveState();
  std::string blob(sizeof(s) + sizeof(next_order_key_), '\0');
  std::memcpy(blob.data(), s.data(), sizeof(s));
  std::memcpy(blob.data() + sizeof(s), &next_order_key_,
              sizeof(next_order_key_));
  return blob;
}

void TpcUpdater::RestoreState(const std::string& blob) {
  std::array<uint64_t, 4> s;
  ABIVM_CHECK_EQ(blob.size(), sizeof(s) + sizeof(next_order_key_));
  std::memcpy(s.data(), blob.data(), sizeof(s));
  std::memcpy(&next_order_key_, blob.data() + sizeof(s),
              sizeof(next_order_key_));
  rng_.RestoreState(s);
}

}  // namespace abivm
