// Deterministic TPC-R/TPC-H-schema data generator.
//
// Substitution note (see DESIGN.md): the official dbgen text grammar and
// dists.dss distributions are not reproduced; strings are seeded synthetic
// tokens. Everything the paper's experiments depend on is preserved:
// the 8-table schema, key relationships, cardinality ratios (PARTSUPP =
// 80x SUPPLIER), the real 25-nation / 5-region catalog (so the
// r_name = 'MIDDLE EAST' filter keeps its selectivity of 5/25 nations),
// and uniform key distributions.

#ifndef ABIVM_TPC_TPC_GEN_H_
#define ABIVM_TPC_TPC_GEN_H_

#include <cstdint>

#include "storage/database.h"

namespace abivm {

struct TpcGenOptions {
  /// TPC scale factor; 1.0 = 10k suppliers / 200k parts / 800k partsupps.
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Also generate CUSTOMER / ORDERS / LINEITEM (not needed by the
  /// paper's view; useful for the examples and extra workloads).
  bool include_sales_pipeline = false;
};

/// Table names.
inline constexpr const char* kRegion = "region";
inline constexpr const char* kNation = "nation";
inline constexpr const char* kSupplier = "supplier";
inline constexpr const char* kPart = "part";
inline constexpr const char* kPartSupp = "partsupp";
inline constexpr const char* kCustomer = "customer";
inline constexpr const char* kOrders = "orders";
inline constexpr const char* kLineItem = "lineitem";

/// Creates the TPC tables in `db` (which must not already contain them)
/// and bulk-loads them at version 0.
void GenerateTpcDatabase(Database* db, const TpcGenOptions& options);

/// Row-count helpers for a given scale factor (minimums of 1 apply).
uint64_t TpcSupplierCount(double scale_factor);
uint64_t TpcPartCount(double scale_factor);
uint64_t TpcPartSuppCount(double scale_factor);
uint64_t TpcCustomerCount(double scale_factor);

}  // namespace abivm

#endif  // ABIVM_TPC_TPC_GEN_H_
