// The paper's modification workload (Section 5): "Each modification
// randomly updates either a PartSupp row's supplycost, or a Supplier row's
// nationkey." Plus generic per-table insert/delete/update drivers for the
// broader examples.

#ifndef ABIVM_TPC_UPDATE_STREAM_H_
#define ABIVM_TPC_UPDATE_STREAM_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "storage/database.h"

namespace abivm {

/// Applies randomized single-row modifications to a TPC database,
/// mirroring the paper's update mix. Deterministic given the seed.
class TpcUpdater {
 public:
  TpcUpdater(Database* db, uint64_t seed);

  /// Updates a random live PARTSUPP row's ps_supplycost to a fresh
  /// uniform value in [1, 1000].
  void UpdatePartSuppSupplycost();

  /// Updates a random live SUPPLIER row's s_nationkey to a fresh uniform
  /// nation in [0, 24].
  void UpdateSupplierNationkey();

  /// Updates a random live PART row's p_retailprice (used by the
  /// Figure 1 two-way join experiment).
  void UpdatePartRetailprice();

  /// Dispatches by base-table name ("partsupp" / "supplier" / "part").
  void ApplyPaperModification(const std::string& table_name);

  /// Inserts a new PARTSUPP row: a random existing part supplied by a
  /// random existing supplier at a fresh cost.
  void InsertPartSupp();

  /// Deletes a random live PARTSUPP row.
  void DeletePartSupp();

  /// Inserts a new ORDER for a random customer (requires the sales
  /// pipeline to have been generated). Order keys continue past the
  /// bulk-loaded range.
  void InsertOrder();

  /// Updates a random live CUSTOMER's c_mktsegment.
  void UpdateCustomerSegment();

  Rng& rng() { return rng_; }

  /// Opaque driver-state blob (RNG state + order-key counter) for the
  /// durability layer: a restored updater replaying the same call
  /// sequence reproduces the original modification stream bit-for-bit.
  std::string SaveState() const;
  void RestoreState(const std::string& blob);

 private:
  Database* db_;
  Rng rng_;
  int64_t next_order_key_ = 1;
};

}  // namespace abivm

#endif  // ABIVM_TPC_UPDATE_STREAM_H_
