#include "obs/export.h"

namespace abivm::obs {

void WriteSnapshotJson(JsonWriter& writer, const MetricsSnapshot& snapshot) {
  writer.BeginObject();
  if (!snapshot.counters.empty()) {
    writer.Key("counters");
    writer.BeginObject();
    for (const auto& [name, value] : snapshot.counters) {
      writer.Field(name, value);
    }
    writer.EndObject();
  }
  if (!snapshot.timers.empty()) {
    writer.Key("timers");
    writer.BeginObject();
    for (const auto& [name, stat] : snapshot.timers) {
      writer.Key(name);
      writer.BeginObject();
      writer.Field("count", stat.count);
      writer.Field("total_ms", stat.total_ms);
      writer.Field("max_ms", stat.max_ms);
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (!snapshot.histograms.empty()) {
    writer.Key("histograms");
    writer.BeginObject();
    for (const auto& [name, stat] : snapshot.histograms) {
      writer.Key(name);
      writer.BeginObject();
      writer.Field("count", stat.count);
      writer.Field("sum", stat.sum);
      writer.Field("min", stat.min);
      writer.Field("max", stat.max);
      writer.Key("buckets");
      writer.BeginArray();
      for (const auto& [upper, count] : stat.buckets) {
        writer.BeginObject();
        writer.Field("le", upper);
        writer.Field("count", count);
        writer.EndObject();
      }
      writer.EndArray();
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndObject();
}

}  // namespace abivm::obs
