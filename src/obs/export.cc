#include "obs/export.h"

namespace abivm::obs {

void WriteSnapshotJson(JsonWriter& writer, const MetricsSnapshot& snapshot) {
  writer.BeginObject();
  if (!snapshot.counters.empty()) {
    writer.Key("counters");
    writer.BeginObject();
    for (const auto& [name, value] : snapshot.counters) {
      writer.Field(name, value);
    }
    writer.EndObject();
  }
  if (!snapshot.gauges.empty()) {
    writer.Key("gauges");
    writer.BeginObject();
    for (const auto& [name, value] : snapshot.gauges) {
      writer.Field(name, value);
    }
    writer.EndObject();
  }
  if (!snapshot.timers.empty()) {
    writer.Key("timers");
    writer.BeginObject();
    for (const auto& [name, stat] : snapshot.timers) {
      writer.Key(name);
      writer.BeginObject();
      writer.Field("count", stat.count);
      writer.Field("total_ms", stat.total_ms);
      writer.Field("max_ms", stat.max_ms);
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (!snapshot.histograms.empty()) {
    writer.Key("histograms");
    writer.BeginObject();
    for (const auto& [name, stat] : snapshot.histograms) {
      writer.Key(name);
      writer.BeginObject();
      writer.Field("count", stat.count);
      writer.Field("sum", stat.sum);
      writer.Field("min", stat.min);
      writer.Field("max", stat.max);
      writer.Key("buckets");
      writer.BeginArray();
      for (const auto& [upper, count] : stat.buckets) {
        writer.BeginObject();
        writer.Field("le", upper);
        writer.Field("count", count);
        writer.EndObject();
      }
      writer.EndArray();
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (!snapshot.latencies.empty()) {
    writer.Key("latencies");
    writer.BeginObject();
    for (const auto& [name, stat] : snapshot.latencies) {
      writer.Key(name);
      writer.BeginObject();
      writer.Field("count", stat.count);
      writer.Field("sum", stat.sum);
      writer.Field("min", stat.min);
      writer.Field("max", stat.max);
      writer.Field("p50", stat.p50);
      writer.Field("p90", stat.p90);
      writer.Field("p99", stat.p99);
      writer.Field("p999", stat.p999);
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndObject();
}

}  // namespace abivm::obs
