#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace abivm::obs {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

JsonWriter::~JsonWriter() {
  // Unfinished documents indicate a structural bug in the caller; don't
  // CHECK in a destructor (it may run during unwinding), just note it.
  if (!stack_.empty()) os_ << "\n/* unterminated JSON */";
}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (size_t i = 0; i < stack_.size() * static_cast<size_t>(indent_); ++i) {
    os_ << ' ';
  }
}

void JsonWriter::BeforeValue() {
  ABIVM_CHECK_MSG(!done_, "JsonWriter: value after document end");
  if (stack_.empty()) return;
  if (stack_.back() == Scope::kObject) {
    ABIVM_CHECK_MSG(key_pending_, "JsonWriter: object value without a key");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  NewlineIndent();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  ABIVM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  ABIVM_CHECK_MSG(!key_pending_, "JsonWriter: dangling key at EndObject");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) NewlineIndent();
  os_ << '}';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  ABIVM_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) NewlineIndent();
  os_ << ']';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Key(std::string_view key) {
  ABIVM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  ABIVM_CHECK_MSG(!key_pending_, "JsonWriter: two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  NewlineIndent();
  os_ << '"';
  WriteEscaped(key);
  os_ << (indent_ > 0 ? "\": " : "\":");
  key_pending_ = true;
}

void JsonWriter::WriteEscaped(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          os_ << buffer;
        } else {
          os_ << c;
        }
    }
  }
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  os_ << '"';
  WriteEscaped(value);
  os_ << '"';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    os_ << "null";
  } else {
    // Shortest representation that round-trips a double.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    for (int precision = 1; precision < 17; ++precision) {
      char candidate[32];
      std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
      std::sscanf(candidate, "%lf", &parsed);
      if (parsed == value) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
        break;
      }
    }
    os_ << buffer;
  }
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Number(uint64_t value) {
  BeforeValue();
  os_ << value;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  os_ << value;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}
void JsonWriter::Field(std::string_view key, const char* value) {
  Key(key);
  String(value);
}
void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  Number(value);
}
void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  Number(value);
}
void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  Number(value);
}
void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace abivm::obs
