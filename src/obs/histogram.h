// Latency histogram with quantile estimation: fixed log-linear buckets
// (HdrHistogram-style -- one power-of-two major bucket split into a fixed
// number of linear sub-buckets), so the relative quantile error is bounded
// by 1/kSubBuckets across the whole range while the record path stays a
// handful of relaxed atomic increments (no lock, no allocation). Built for
// the serving layer's read/flush latencies, where p99/p999 under
// concurrent recording is the product; the coarser obs::Histogram keeps
// its pow-2 buckets for work-size distributions.
//
// Values are non-negative milliseconds. Resolution spans kMinValueMs
// (1 ns) through ~18 minutes; samples outside the range clamp into the
// first/last bucket (count/sum/min/max stay exact regardless).

#ifndef ABIVM_OBS_HISTOGRAM_H_
#define ABIVM_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace abivm::obs {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two major bucket: the interpolated
  /// quantile's relative error is at most 1/kSubBuckets ~ 6%.
  static constexpr size_t kSubBuckets = 16;
  /// Major (power-of-two) buckets covering [kMinValueMs, 2^kExponents ns).
  static constexpr size_t kExponents = 40;
  static constexpr size_t kBuckets = kExponents * kSubBuckets;
  /// The smallest resolvable value: 1 nanosecond, in milliseconds.
  static constexpr double kMinValueMs = 1e-6;

  /// Thread-safe, lock-free: relaxed atomic increments only.
  void Record(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const { return max_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the covering bucket, clamped to the observed [min, max]. Returns 0
  /// when empty. Safe to call while other threads record; the estimate
  /// reflects a racy-but-monotone view of the counts, which is the right
  /// trade for reporting.
  double Quantile(double q) const;

  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b (lower bound of b+1).
  static double BucketUpperBound(size_t b);

 private:
  static size_t BucketIndex(double ms);

  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<bool> has_min_{false};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

}  // namespace abivm::obs

#endif  // ABIVM_OBS_HISTOGRAM_H_
