// JSON serialization of metric snapshots (kept out of metrics.h so the
// hot-path header stays light).

#ifndef ABIVM_OBS_EXPORT_H_
#define ABIVM_OBS_EXPORT_H_

#include "obs/json.h"
#include "obs/metrics.h"

namespace abivm::obs {

/// Writes the snapshot as one JSON object:
///   {"counters": {...}, "timers": {"name": {"count":..,"total_ms":..,
///    "max_ms":..}, ...}, "histograms": {...}}
/// Sections with no entries are omitted. Must be called where a JSON
/// value is expected (after Key(), or inside an array).
void WriteSnapshotJson(JsonWriter& writer, const MetricsSnapshot& snapshot);

}  // namespace abivm::obs

#endif  // ABIVM_OBS_EXPORT_H_
