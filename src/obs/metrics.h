// Observability substrate: named counters, timers and histograms behind a
// thread-safe registry, plus immutable snapshots for reporting/JSON export.
//
// Design rules:
//   * Recording is cheap and lock-free (relaxed atomics); the registry
//     mutex is taken only on first lookup of a name.
//   * Metric objects are owned by the registry and never move, so callers
//     may cache `Counter&`/`Timer&` references across a hot loop.
//   * A registry is the unit of isolation: parallel sweep jobs each own
//     one, so concurrent jobs never contend on (or mix) each other's
//     numbers.

#ifndef ABIVM_OBS_METRICS_H_
#define ABIVM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace abivm::obs {

/// Monotone event counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sets the counter to max(current, candidate) -- for high-water marks
  /// (e.g. peak frontier size) reported through the counter namespace.
  void RaiseTo(uint64_t candidate) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (current < candidate &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value instrument for levels that go up AND down (queue depths,
/// active workers, in-flight requests). Counter is the wrong shape for
/// these: its value only grows. Sampled by whoever owns the level
/// (producer on change or a periodic sampler); readers see the latest
/// Set/Add result.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Accumulated wall-clock time: total/max milliseconds and a call count.
class Timer {
 public:
  void Record(double ms) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ms_.fetch_add(ms, std::memory_order_relaxed);
    double current = max_ms_.load(std::memory_order_relaxed);
    while (current < ms && !max_ms_.compare_exchange_weak(
                               current, ms, std::memory_order_relaxed)) {
    }
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_ms() const {
    return total_ms_.load(std::memory_order_relaxed);
  }
  double max_ms() const { return max_ms_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> total_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

/// Log-scale histogram over non-negative samples: power-of-two buckets
/// plus count/sum/min/max. Bucket b counts samples in (2^(b-1), 2^b]
/// (bucket 0 holds samples <= 1).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<bool> has_min_{false};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time copy of a registry's contents; plain data, safe to move
/// across threads and to serialize after the fact.
struct MetricsSnapshot {
  struct TimerStat {
    uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };
  struct HistogramStat {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// (bucket_upper_bound, count) for non-empty buckets only.
    std::vector<std::pair<double, uint64_t>> buckets;
  };
  /// Quantile summary of a LatencyHistogram, computed at snapshot time.
  struct LatencyStat {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, TimerStat> timers;
  std::map<std::string, HistogramStat> histograms;
  std::map<std::string, LatencyStat> latencies;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty() &&
           histograms.empty() && latencies.empty();
  }
};

/// Thread-safe registry of named metrics. Lookup interns the name; the
/// returned reference stays valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);
  LatencyHistogram& latency(std::string_view name);

  /// Copies every metric's current value. Safe to call while other
  /// threads record (each value is read atomically; cross-metric skew is
  /// acceptable for reporting).
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_;
};

}  // namespace abivm::obs

#endif  // ABIVM_OBS_METRICS_H_
