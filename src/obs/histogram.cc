#include "obs/histogram.h"

#include <cmath>

namespace abivm::obs {

namespace {

template <typename T>
void AtomicRaise(std::atomic<T>& slot, T candidate) {
  T current = slot.load(std::memory_order_relaxed);
  while (current < candidate &&
         !slot.compare_exchange_weak(current, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicLower(std::atomic<double>& slot, double candidate) {
  double current = slot.load(std::memory_order_relaxed);
  while (candidate < current &&
         !slot.compare_exchange_weak(current, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t LatencyHistogram::BucketIndex(double ms) {
  // Work in units of the minimum resolvable value (nanoseconds).
  const double scaled = ms / kMinValueMs;
  if (!(scaled >= 1.0)) return 0;  // also catches NaN and negatives
  const int exponent = std::ilogb(scaled);
  if (exponent < 0) return 0;
  if (static_cast<size_t>(exponent) >= kExponents) return kBuckets - 1;
  // Linear position inside [2^e, 2^(e+1)): mantissa - 1 in [0, 1).
  const double mantissa = std::ldexp(scaled, -exponent);  // [1, 2)
  size_t sub = static_cast<size_t>((mantissa - 1.0) *
                                   static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // fp round-up guard
  return static_cast<size_t>(exponent) * kSubBuckets + sub;
}

double LatencyHistogram::BucketUpperBound(size_t b) {
  const size_t exponent = b / kSubBuckets;
  const size_t sub = b % kSubBuckets;
  const double base = std::ldexp(kMinValueMs, static_cast<int>(exponent));
  return base * (1.0 + static_cast<double>(sub + 1) /
                           static_cast<double>(kSubBuckets));
}

void LatencyHistogram::Record(double ms) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ms, std::memory_order_relaxed);
  AtomicRaise(max_, ms);
  if (!has_min_.load(std::memory_order_relaxed)) {
    // Benign race with another first-sample; the lowering CAS below
    // keeps the smaller of the two.
    min_.store(ms, std::memory_order_relaxed);
    has_min_.store(true, std::memory_order_relaxed);
  }
  AtomicLower(min_, ms);
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::min() const {
  return has_min_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q = 0 maps to the first sample.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;

  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    const double upper = BucketUpperBound(b);
    const double lower =
        b == 0 ? 0.0 : BucketUpperBound(b - 1);
    const double within =
        static_cast<double>(rank - cumulative) /
        static_cast<double>(in_bucket);
    double estimate = lower + (upper - lower) * within;
    // Clamp to the observed extremes so single-bucket distributions
    // report exact values at q=0/q=1.
    const double lo = min();
    const double hi = max();
    if (estimate < lo) estimate = lo;
    if (estimate > hi) estimate = hi;
    return estimate;
  }
  // Counts raced ahead of the bucket array (recorders bump count_ before
  // the bucket slot); fall back to the observed maximum.
  return max();
}

}  // namespace abivm::obs
