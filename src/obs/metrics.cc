#include "obs/metrics.h"

#include <cmath>

namespace abivm::obs {

namespace {

// Smallest b with value <= 2^(b - 1); bucket 0 holds values <= 1.
size_t BucketIndex(double value) {
  if (!(value > 1.0)) return 0;
  int exponent = 0;
  // frexp: value = mantissa * 2^exponent with mantissa in [0.5, 1), so
  // value <= 2^exponent with equality only at exact powers of two.
  const double mantissa = std::frexp(value, &exponent);
  if (mantissa == 0.5) --exponent;  // exact power of two: 2^e belongs to e
  if (exponent < 0) return 0;
  const size_t b = static_cast<size_t>(exponent);
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

template <typename T>
void AtomicRaise(std::atomic<T>& slot, T candidate) {
  T current = slot.load(std::memory_order_relaxed);
  while (current < candidate &&
         !slot.compare_exchange_weak(current, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicRaise(max_, value);
  if (!has_min_.load(std::memory_order_relaxed)) {
    // Benign race: two first-samples may both write; the CAS loop below
    // then keeps the smaller one.
    min_.store(value, std::memory_order_relaxed);
    has_min_.store(true, std::memory_order_relaxed);
  }
  double current = min_.load(std::memory_order_relaxed);
  while (value < current &&
         !min_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return has_min_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& MetricRegistry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

LatencyHistogram& MetricRegistry::latency(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, timer] : timers_) {
    snapshot.timers[name] = MetricsSnapshot::TimerStat{
        timer->count(), timer->total_ms(), timer->max_ms()};
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStat stat;
    stat.count = histogram->count();
    stat.sum = histogram->sum();
    stat.min = histogram->min();
    stat.max = histogram->max();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t c = histogram->bucket(b);
      if (c != 0) {
        stat.buckets.emplace_back(std::ldexp(1.0, static_cast<int>(b)), c);
      }
    }
    snapshot.histograms[name] = std::move(stat);
  }
  for (const auto& [name, latency] : latencies_) {
    MetricsSnapshot::LatencyStat stat;
    stat.count = latency->count();
    stat.sum = latency->sum();
    stat.min = latency->min();
    stat.max = latency->max();
    stat.p50 = latency->Quantile(0.50);
    stat.p90 = latency->Quantile(0.90);
    stat.p99 = latency->Quantile(0.99);
    stat.p999 = latency->Quantile(0.999);
    snapshot.latencies[name] = stat;
  }
  return snapshot;
}

}  // namespace abivm::obs
