// Scoped trace spans: RAII timing that records into a registry Timer on
// destruction. The registry pointer may be null, making instrumentation
// free to leave compiled-in on hot paths that are usually unobserved.

#ifndef ABIVM_OBS_SPAN_H_
#define ABIVM_OBS_SPAN_H_

#include <string_view>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace abivm::obs {

/// Times the enclosing scope into `registry->timer(name)`; no-op when
/// `registry` is null. Intern the Timer yourself (TimedSection) when the
/// span sits inside a tight loop and the name lookup would show up.
class ScopedSpan {
 public:
  ScopedSpan(MetricRegistry* registry, std::string_view name)
      : timer_(registry == nullptr ? nullptr : &registry->timer(name)) {}
  explicit ScopedSpan(Timer* timer) : timer_(timer) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (timer_ != nullptr) timer_->Record(watch_.ElapsedMs());
  }

 private:
  Timer* timer_;
  Stopwatch watch_;
};

}  // namespace abivm::obs

#endif  // ABIVM_OBS_SPAN_H_
