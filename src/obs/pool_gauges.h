// Bridges ThreadPool saturation observables into the metric registry.
// Lives in obs/ (not common/) because common is the bottom of the library
// stack and must not depend on the registry; obs already links common.
//
// Gauges are sampled, not pushed: the pool updates lock-free atomics on
// every task transition, and whoever owns the registry (the serving
// loop's cycle, a bench's report pass) calls Sample() at its own cadence.

#ifndef ABIVM_OBS_POOL_GAUGES_H_
#define ABIVM_OBS_POOL_GAUGES_H_

#include <string>
#include <string_view>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace abivm::obs {

/// Interns `<prefix>.queue_depth` / `<prefix>.active_workers` /
/// `<prefix>.threads` gauges plus a `<prefix>.tasks_submitted` counter
/// once, then copies the pool's current values on every Sample() with no
/// name lookups and no locks beyond the pool's relaxed atomics.
class ThreadPoolGauges {
 public:
  ThreadPoolGauges(const ThreadPool* pool, MetricRegistry* registry,
                   std::string_view prefix = "pool")
      : pool_(pool),
        queue_depth_(&registry->gauge(std::string(prefix) + ".queue_depth")),
        active_workers_(
            &registry->gauge(std::string(prefix) + ".active_workers")),
        threads_(&registry->gauge(std::string(prefix) + ".threads")),
        tasks_submitted_(
            &registry->counter(std::string(prefix) + ".tasks_submitted")) {
    threads_->Set(static_cast<int64_t>(pool->thread_count()));
  }

  void Sample() {
    queue_depth_->Set(static_cast<int64_t>(pool_->queue_depth()));
    active_workers_->Set(static_cast<int64_t>(pool_->active_workers()));
    const uint64_t submitted = pool_->tasks_submitted();
    tasks_submitted_->RaiseTo(submitted);
  }

 private:
  const ThreadPool* pool_;
  Gauge* queue_depth_;
  Gauge* active_workers_;
  Gauge* threads_;
  Counter* tasks_submitted_;
};

}  // namespace abivm::obs

#endif  // ABIVM_OBS_POOL_GAUGES_H_
