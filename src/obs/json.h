// Minimal streaming JSON writer (no external dependencies): handles
// nesting, comma placement, string escaping and round-trippable number
// formatting. Used by the metrics/sweep exporters; deliberately tiny --
// not a general-purpose JSON library.

#ifndef ABIVM_OBS_JSON_H_
#define ABIVM_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace abivm::obs {

/// Emits syntactically valid JSON to an ostream. Usage:
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("name"); w.String("fig06");
///   w.Key("rows"); w.BeginArray(); w.Number(1.5); w.EndArray();
///   w.EndObject();
/// Structural misuse (e.g. a value without a pending key inside an
/// object) CHECK-fails.
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level.
  explicit JsonWriter(std::ostream& os, int indent = 2);
  ~JsonWriter();

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);  // non-finite values are emitted as null
  void Number(uint64_t value);
  void Number(int64_t value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call. The const char* overload stops
  /// string literals from silently binding to the bool overload (a
  /// pointer->bool standard conversion outranks the user-defined
  /// conversion to string_view).
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, bool value);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void NewlineIndent();
  void WriteEscaped(std::string_view text);

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace abivm::obs

#endif  // ABIVM_OBS_JSON_H_
