# CMake generated Testfile for 
# Source directory: /root/repo/tests/ivm
# Build directory: /root/repo/build/tests/ivm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ivm/view_state_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/binding_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/maintainer_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/calibrator_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/groupby_view_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/planner_options_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/avg_view_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/view_group_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/fuzz_workload_test[1]_include.cmake")
include("/root/repo/build/tests/ivm/explain_test[1]_include.cmake")
