# Empty dependencies file for view_state_test.
# This may be replaced when dependencies are built.
