file(REMOVE_RECURSE
  "CMakeFiles/view_state_test.dir/view_state_test.cc.o"
  "CMakeFiles/view_state_test.dir/view_state_test.cc.o.d"
  "view_state_test"
  "view_state_test.pdb"
  "view_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
