file(REMOVE_RECURSE
  "CMakeFiles/groupby_view_test.dir/groupby_view_test.cc.o"
  "CMakeFiles/groupby_view_test.dir/groupby_view_test.cc.o.d"
  "groupby_view_test"
  "groupby_view_test.pdb"
  "groupby_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
