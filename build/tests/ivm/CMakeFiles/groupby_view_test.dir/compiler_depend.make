# Empty compiler generated dependencies file for groupby_view_test.
# This may be replaced when dependencies are built.
