# Empty compiler generated dependencies file for calibrator_test.
# This may be replaced when dependencies are built.
