# Empty compiler generated dependencies file for avg_view_test.
# This may be replaced when dependencies are built.
