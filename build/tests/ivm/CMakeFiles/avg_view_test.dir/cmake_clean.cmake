file(REMOVE_RECURSE
  "CMakeFiles/avg_view_test.dir/avg_view_test.cc.o"
  "CMakeFiles/avg_view_test.dir/avg_view_test.cc.o.d"
  "avg_view_test"
  "avg_view_test.pdb"
  "avg_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avg_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
