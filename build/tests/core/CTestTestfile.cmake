# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/arrivals_test[1]_include.cmake")
include("/root/repo/build/tests/core/plan_test[1]_include.cmake")
include("/root/repo/build/tests/core/actions_test[1]_include.cmake")
include("/root/repo/build/tests/core/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/core/astar_test[1]_include.cmake")
include("/root/repo/build/tests/core/policies_test[1]_include.cmake")
include("/root/repo/build/tests/core/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/core/replan_test[1]_include.cmake")
include("/root/repo/build/tests/core/misc_test[1]_include.cmake")
