# Empty compiler generated dependencies file for replan_test.
# This may be replaced when dependencies are built.
