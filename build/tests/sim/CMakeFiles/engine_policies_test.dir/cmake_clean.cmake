file(REMOVE_RECURSE
  "CMakeFiles/engine_policies_test.dir/engine_policies_test.cc.o"
  "CMakeFiles/engine_policies_test.dir/engine_policies_test.cc.o.d"
  "engine_policies_test"
  "engine_policies_test.pdb"
  "engine_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
