# Empty dependencies file for engine_policies_test.
# This may be replaced when dependencies are built.
