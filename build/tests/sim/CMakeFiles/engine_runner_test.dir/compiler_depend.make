# Empty compiler generated dependencies file for engine_runner_test.
# This may be replaced when dependencies are built.
