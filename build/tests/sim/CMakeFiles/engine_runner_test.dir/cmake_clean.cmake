file(REMOVE_RECURSE
  "CMakeFiles/engine_runner_test.dir/engine_runner_test.cc.o"
  "CMakeFiles/engine_runner_test.dir/engine_runner_test.cc.o.d"
  "engine_runner_test"
  "engine_runner_test.pdb"
  "engine_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
