# CMake generated Testfile for 
# Source directory: /root/repo/tests/tpc
# Build directory: /root/repo/build/tests/tpc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tpc/tpc_gen_test[1]_include.cmake")
include("/root/repo/build/tests/tpc/arrivals_gen_test[1]_include.cmake")
