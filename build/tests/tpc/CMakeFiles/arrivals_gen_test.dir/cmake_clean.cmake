file(REMOVE_RECURSE
  "CMakeFiles/arrivals_gen_test.dir/arrivals_gen_test.cc.o"
  "CMakeFiles/arrivals_gen_test.dir/arrivals_gen_test.cc.o.d"
  "arrivals_gen_test"
  "arrivals_gen_test.pdb"
  "arrivals_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrivals_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
