# Empty compiler generated dependencies file for tpc_gen_test.
# This may be replaced when dependencies are built.
