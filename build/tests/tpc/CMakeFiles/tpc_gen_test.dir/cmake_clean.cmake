file(REMOVE_RECURSE
  "CMakeFiles/tpc_gen_test.dir/tpc_gen_test.cc.o"
  "CMakeFiles/tpc_gen_test.dir/tpc_gen_test.cc.o.d"
  "tpc_gen_test"
  "tpc_gen_test.pdb"
  "tpc_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpc_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
