# Empty dependencies file for cost_function_test.
# This may be replaced when dependencies are built.
