file(REMOVE_RECURSE
  "CMakeFiles/cost_function_test.dir/cost_function_test.cc.o"
  "CMakeFiles/cost_function_test.dir/cost_function_test.cc.o.d"
  "cost_function_test"
  "cost_function_test.pdb"
  "cost_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
