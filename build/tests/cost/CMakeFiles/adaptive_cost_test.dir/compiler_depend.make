# Empty compiler generated dependencies file for adaptive_cost_test.
# This may be replaced when dependencies are built.
