file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cost_test.dir/adaptive_cost_test.cc.o"
  "CMakeFiles/adaptive_cost_test.dir/adaptive_cost_test.cc.o.d"
  "adaptive_cost_test"
  "adaptive_cost_test.pdb"
  "adaptive_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
