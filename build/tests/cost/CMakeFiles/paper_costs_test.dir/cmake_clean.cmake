file(REMOVE_RECURSE
  "CMakeFiles/paper_costs_test.dir/paper_costs_test.cc.o"
  "CMakeFiles/paper_costs_test.dir/paper_costs_test.cc.o.d"
  "paper_costs_test"
  "paper_costs_test.pdb"
  "paper_costs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
