
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost/paper_costs_test.cc" "tests/cost/CMakeFiles/paper_costs_test.dir/paper_costs_test.cc.o" "gcc" "tests/cost/CMakeFiles/paper_costs_test.dir/paper_costs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abivm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/abivm_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/ivm/CMakeFiles/abivm_ivm.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/abivm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abivm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abivm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/abivm_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abivm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
