# CMake generated Testfile for 
# Source directory: /root/repo/tests/cost
# Build directory: /root/repo/build/tests/cost
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cost/cost_function_test[1]_include.cmake")
include("/root/repo/build/tests/cost/paper_costs_test[1]_include.cmake")
include("/root/repo/build/tests/cost/adaptive_cost_test[1]_include.cmake")
