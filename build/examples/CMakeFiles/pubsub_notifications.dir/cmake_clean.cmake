file(REMOVE_RECURSE
  "CMakeFiles/pubsub_notifications.dir/pubsub_notifications.cc.o"
  "CMakeFiles/pubsub_notifications.dir/pubsub_notifications.cc.o.d"
  "pubsub_notifications"
  "pubsub_notifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_notifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
