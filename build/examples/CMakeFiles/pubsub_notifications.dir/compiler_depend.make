# Empty compiler generated dependencies file for pubsub_notifications.
# This may be replaced when dependencies are built.
