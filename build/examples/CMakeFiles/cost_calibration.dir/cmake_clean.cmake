file(REMOVE_RECURSE
  "CMakeFiles/cost_calibration.dir/cost_calibration.cc.o"
  "CMakeFiles/cost_calibration.dir/cost_calibration.cc.o.d"
  "cost_calibration"
  "cost_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
