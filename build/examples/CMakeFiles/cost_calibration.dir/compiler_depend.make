# Empty compiler generated dependencies file for cost_calibration.
# This may be replaced when dependencies are built.
