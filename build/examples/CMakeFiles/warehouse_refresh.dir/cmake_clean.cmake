file(REMOVE_RECURSE
  "CMakeFiles/warehouse_refresh.dir/warehouse_refresh.cc.o"
  "CMakeFiles/warehouse_refresh.dir/warehouse_refresh.cc.o.d"
  "warehouse_refresh"
  "warehouse_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
