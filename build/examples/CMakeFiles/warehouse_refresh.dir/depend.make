# Empty dependencies file for warehouse_refresh.
# This may be replaced when dependencies are built.
