# Empty compiler generated dependencies file for abivm_ivm.
# This may be replaced when dependencies are built.
