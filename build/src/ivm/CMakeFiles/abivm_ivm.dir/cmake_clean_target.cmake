file(REMOVE_RECURSE
  "libabivm_ivm.a"
)
