file(REMOVE_RECURSE
  "CMakeFiles/abivm_ivm.dir/binding.cc.o"
  "CMakeFiles/abivm_ivm.dir/binding.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/calibrator.cc.o"
  "CMakeFiles/abivm_ivm.dir/calibrator.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/explain.cc.o"
  "CMakeFiles/abivm_ivm.dir/explain.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/maintainer.cc.o"
  "CMakeFiles/abivm_ivm.dir/maintainer.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/sql_parser.cc.o"
  "CMakeFiles/abivm_ivm.dir/sql_parser.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/view_group.cc.o"
  "CMakeFiles/abivm_ivm.dir/view_group.cc.o.d"
  "CMakeFiles/abivm_ivm.dir/view_state.cc.o"
  "CMakeFiles/abivm_ivm.dir/view_state.cc.o.d"
  "libabivm_ivm.a"
  "libabivm_ivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_ivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
