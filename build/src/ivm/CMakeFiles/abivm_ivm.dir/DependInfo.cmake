
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivm/binding.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/binding.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/binding.cc.o.d"
  "/root/repo/src/ivm/calibrator.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/calibrator.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/calibrator.cc.o.d"
  "/root/repo/src/ivm/explain.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/explain.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/explain.cc.o.d"
  "/root/repo/src/ivm/maintainer.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/maintainer.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/maintainer.cc.o.d"
  "/root/repo/src/ivm/sql_parser.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/sql_parser.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/sql_parser.cc.o.d"
  "/root/repo/src/ivm/view_group.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/view_group.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/view_group.cc.o.d"
  "/root/repo/src/ivm/view_state.cc" "src/ivm/CMakeFiles/abivm_ivm.dir/view_state.cc.o" "gcc" "src/ivm/CMakeFiles/abivm_ivm.dir/view_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/abivm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abivm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/abivm_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abivm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abivm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
