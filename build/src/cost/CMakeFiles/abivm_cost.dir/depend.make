# Empty dependencies file for abivm_cost.
# This may be replaced when dependencies are built.
