file(REMOVE_RECURSE
  "CMakeFiles/abivm_cost.dir/adaptive_cost.cc.o"
  "CMakeFiles/abivm_cost.dir/adaptive_cost.cc.o.d"
  "CMakeFiles/abivm_cost.dir/cost_function.cc.o"
  "CMakeFiles/abivm_cost.dir/cost_function.cc.o.d"
  "libabivm_cost.a"
  "libabivm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
