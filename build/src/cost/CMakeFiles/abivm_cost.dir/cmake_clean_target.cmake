file(REMOVE_RECURSE
  "libabivm_cost.a"
)
