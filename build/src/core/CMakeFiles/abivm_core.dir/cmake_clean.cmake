file(REMOVE_RECURSE
  "CMakeFiles/abivm_core.dir/actions.cc.o"
  "CMakeFiles/abivm_core.dir/actions.cc.o.d"
  "CMakeFiles/abivm_core.dir/arrivals.cc.o"
  "CMakeFiles/abivm_core.dir/arrivals.cc.o.d"
  "CMakeFiles/abivm_core.dir/astar.cc.o"
  "CMakeFiles/abivm_core.dir/astar.cc.o.d"
  "CMakeFiles/abivm_core.dir/cost_model.cc.o"
  "CMakeFiles/abivm_core.dir/cost_model.cc.o.d"
  "CMakeFiles/abivm_core.dir/exhaustive.cc.o"
  "CMakeFiles/abivm_core.dir/exhaustive.cc.o.d"
  "CMakeFiles/abivm_core.dir/naive.cc.o"
  "CMakeFiles/abivm_core.dir/naive.cc.o.d"
  "CMakeFiles/abivm_core.dir/online.cc.o"
  "CMakeFiles/abivm_core.dir/online.cc.o.d"
  "CMakeFiles/abivm_core.dir/plan.cc.o"
  "CMakeFiles/abivm_core.dir/plan.cc.o.d"
  "CMakeFiles/abivm_core.dir/plan_policies.cc.o"
  "CMakeFiles/abivm_core.dir/plan_policies.cc.o.d"
  "CMakeFiles/abivm_core.dir/replan.cc.o"
  "CMakeFiles/abivm_core.dir/replan.cc.o.d"
  "CMakeFiles/abivm_core.dir/transforms.cc.o"
  "CMakeFiles/abivm_core.dir/transforms.cc.o.d"
  "CMakeFiles/abivm_core.dir/types.cc.o"
  "CMakeFiles/abivm_core.dir/types.cc.o.d"
  "libabivm_core.a"
  "libabivm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
