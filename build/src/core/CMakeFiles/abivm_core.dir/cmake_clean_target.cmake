file(REMOVE_RECURSE
  "libabivm_core.a"
)
