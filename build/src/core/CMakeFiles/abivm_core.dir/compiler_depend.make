# Empty compiler generated dependencies file for abivm_core.
# This may be replaced when dependencies are built.
