
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actions.cc" "src/core/CMakeFiles/abivm_core.dir/actions.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/actions.cc.o.d"
  "/root/repo/src/core/arrivals.cc" "src/core/CMakeFiles/abivm_core.dir/arrivals.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/arrivals.cc.o.d"
  "/root/repo/src/core/astar.cc" "src/core/CMakeFiles/abivm_core.dir/astar.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/astar.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/abivm_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "src/core/CMakeFiles/abivm_core.dir/exhaustive.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/exhaustive.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/core/CMakeFiles/abivm_core.dir/naive.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/naive.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/abivm_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/online.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/abivm_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/plan.cc.o.d"
  "/root/repo/src/core/plan_policies.cc" "src/core/CMakeFiles/abivm_core.dir/plan_policies.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/plan_policies.cc.o.d"
  "/root/repo/src/core/replan.cc" "src/core/CMakeFiles/abivm_core.dir/replan.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/replan.cc.o.d"
  "/root/repo/src/core/transforms.cc" "src/core/CMakeFiles/abivm_core.dir/transforms.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/transforms.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/abivm_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/abivm_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/abivm_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abivm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
