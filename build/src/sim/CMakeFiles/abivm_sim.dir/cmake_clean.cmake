file(REMOVE_RECURSE
  "CMakeFiles/abivm_sim.dir/engine_runner.cc.o"
  "CMakeFiles/abivm_sim.dir/engine_runner.cc.o.d"
  "CMakeFiles/abivm_sim.dir/report.cc.o"
  "CMakeFiles/abivm_sim.dir/report.cc.o.d"
  "CMakeFiles/abivm_sim.dir/simulator.cc.o"
  "CMakeFiles/abivm_sim.dir/simulator.cc.o.d"
  "libabivm_sim.a"
  "libabivm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
