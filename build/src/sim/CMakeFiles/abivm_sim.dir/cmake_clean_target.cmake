file(REMOVE_RECURSE
  "libabivm_sim.a"
)
