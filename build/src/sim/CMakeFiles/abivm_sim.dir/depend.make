# Empty dependencies file for abivm_sim.
# This may be replaced when dependencies are built.
