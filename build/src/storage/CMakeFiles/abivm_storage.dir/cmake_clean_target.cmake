file(REMOVE_RECURSE
  "libabivm_storage.a"
)
