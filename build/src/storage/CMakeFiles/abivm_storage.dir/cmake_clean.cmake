file(REMOVE_RECURSE
  "CMakeFiles/abivm_storage.dir/csv.cc.o"
  "CMakeFiles/abivm_storage.dir/csv.cc.o.d"
  "CMakeFiles/abivm_storage.dir/database.cc.o"
  "CMakeFiles/abivm_storage.dir/database.cc.o.d"
  "CMakeFiles/abivm_storage.dir/schema.cc.o"
  "CMakeFiles/abivm_storage.dir/schema.cc.o.d"
  "CMakeFiles/abivm_storage.dir/table.cc.o"
  "CMakeFiles/abivm_storage.dir/table.cc.o.d"
  "CMakeFiles/abivm_storage.dir/value.cc.o"
  "CMakeFiles/abivm_storage.dir/value.cc.o.d"
  "libabivm_storage.a"
  "libabivm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
