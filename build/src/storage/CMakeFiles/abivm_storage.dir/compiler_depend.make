# Empty compiler generated dependencies file for abivm_storage.
# This may be replaced when dependencies are built.
