file(REMOVE_RECURSE
  "CMakeFiles/abivm_exec.dir/operators.cc.o"
  "CMakeFiles/abivm_exec.dir/operators.cc.o.d"
  "CMakeFiles/abivm_exec.dir/stats.cc.o"
  "CMakeFiles/abivm_exec.dir/stats.cc.o.d"
  "libabivm_exec.a"
  "libabivm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
