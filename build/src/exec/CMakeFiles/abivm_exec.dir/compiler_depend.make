# Empty compiler generated dependencies file for abivm_exec.
# This may be replaced when dependencies are built.
