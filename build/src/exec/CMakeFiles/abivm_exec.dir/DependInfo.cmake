
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/abivm_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/abivm_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/stats.cc" "src/exec/CMakeFiles/abivm_exec.dir/stats.cc.o" "gcc" "src/exec/CMakeFiles/abivm_exec.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/abivm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abivm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
