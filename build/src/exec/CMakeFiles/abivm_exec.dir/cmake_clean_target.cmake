file(REMOVE_RECURSE
  "libabivm_exec.a"
)
