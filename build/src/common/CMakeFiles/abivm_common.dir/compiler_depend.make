# Empty compiler generated dependencies file for abivm_common.
# This may be replaced when dependencies are built.
