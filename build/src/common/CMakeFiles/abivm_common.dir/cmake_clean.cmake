file(REMOVE_RECURSE
  "CMakeFiles/abivm_common.dir/fit.cc.o"
  "CMakeFiles/abivm_common.dir/fit.cc.o.d"
  "CMakeFiles/abivm_common.dir/random.cc.o"
  "CMakeFiles/abivm_common.dir/random.cc.o.d"
  "libabivm_common.a"
  "libabivm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
