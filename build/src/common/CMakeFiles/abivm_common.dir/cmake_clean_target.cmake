file(REMOVE_RECURSE
  "libabivm_common.a"
)
