# Empty compiler generated dependencies file for abivm_tpc.
# This may be replaced when dependencies are built.
