file(REMOVE_RECURSE
  "libabivm_tpc.a"
)
