file(REMOVE_RECURSE
  "CMakeFiles/abivm_tpc.dir/arrivals_gen.cc.o"
  "CMakeFiles/abivm_tpc.dir/arrivals_gen.cc.o.d"
  "CMakeFiles/abivm_tpc.dir/tpc_gen.cc.o"
  "CMakeFiles/abivm_tpc.dir/tpc_gen.cc.o.d"
  "CMakeFiles/abivm_tpc.dir/update_stream.cc.o"
  "CMakeFiles/abivm_tpc.dir/update_stream.cc.o.d"
  "CMakeFiles/abivm_tpc.dir/views.cc.o"
  "CMakeFiles/abivm_tpc.dir/views.cc.o.d"
  "libabivm_tpc.a"
  "libabivm_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abivm_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
