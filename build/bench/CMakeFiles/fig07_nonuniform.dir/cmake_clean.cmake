file(REMOVE_RECURSE
  "CMakeFiles/fig07_nonuniform.dir/fig07_nonuniform.cc.o"
  "CMakeFiles/fig07_nonuniform.dir/fig07_nonuniform.cc.o.d"
  "fig07_nonuniform"
  "fig07_nonuniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
