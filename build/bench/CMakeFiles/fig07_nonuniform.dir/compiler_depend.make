# Empty compiler generated dependencies file for fig07_nonuniform.
# This may be replaced when dependencies are built.
