file(REMOVE_RECURSE
  "CMakeFiles/abl_tightness.dir/abl_tightness.cc.o"
  "CMakeFiles/abl_tightness.dir/abl_tightness.cc.o.d"
  "abl_tightness"
  "abl_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
