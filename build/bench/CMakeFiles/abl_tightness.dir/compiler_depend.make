# Empty compiler generated dependencies file for abl_tightness.
# This may be replaced when dependencies are built.
