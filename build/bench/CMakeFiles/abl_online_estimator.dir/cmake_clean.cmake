file(REMOVE_RECURSE
  "CMakeFiles/abl_online_estimator.dir/abl_online_estimator.cc.o"
  "CMakeFiles/abl_online_estimator.dir/abl_online_estimator.cc.o.d"
  "abl_online_estimator"
  "abl_online_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_online_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
