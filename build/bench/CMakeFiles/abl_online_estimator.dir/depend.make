# Empty dependencies file for abl_online_estimator.
# This may be replaced when dependencies are built.
