# Empty compiler generated dependencies file for abl_cost_shapes.
# This may be replaced when dependencies are built.
