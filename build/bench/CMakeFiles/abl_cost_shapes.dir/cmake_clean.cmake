file(REMOVE_RECURSE
  "CMakeFiles/abl_cost_shapes.dir/abl_cost_shapes.cc.o"
  "CMakeFiles/abl_cost_shapes.dir/abl_cost_shapes.cc.o.d"
  "abl_cost_shapes"
  "abl_cost_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cost_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
