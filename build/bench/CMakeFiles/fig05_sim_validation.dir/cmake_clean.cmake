file(REMOVE_RECURSE
  "CMakeFiles/fig05_sim_validation.dir/fig05_sim_validation.cc.o"
  "CMakeFiles/fig05_sim_validation.dir/fig05_sim_validation.cc.o.d"
  "fig05_sim_validation"
  "fig05_sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
