# Empty compiler generated dependencies file for fig05_sim_validation.
# This may be replaced when dependencies are built.
