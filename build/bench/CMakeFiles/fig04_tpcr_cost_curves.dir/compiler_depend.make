# Empty compiler generated dependencies file for fig04_tpcr_cost_curves.
# This may be replaced when dependencies are built.
