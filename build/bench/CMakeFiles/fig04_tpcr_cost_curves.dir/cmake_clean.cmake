file(REMOVE_RECURSE
  "CMakeFiles/fig04_tpcr_cost_curves.dir/fig04_tpcr_cost_curves.cc.o"
  "CMakeFiles/fig04_tpcr_cost_curves.dir/fig04_tpcr_cost_curves.cc.o.d"
  "fig04_tpcr_cost_curves"
  "fig04_tpcr_cost_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_tpcr_cost_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
