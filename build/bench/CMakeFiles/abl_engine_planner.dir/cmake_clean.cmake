file(REMOVE_RECURSE
  "CMakeFiles/abl_engine_planner.dir/abl_engine_planner.cc.o"
  "CMakeFiles/abl_engine_planner.dir/abl_engine_planner.cc.o.d"
  "abl_engine_planner"
  "abl_engine_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
