# Empty compiler generated dependencies file for abl_engine_planner.
# This may be replaced when dependencies are built.
