file(REMOVE_RECURSE
  "CMakeFiles/abl_replanning.dir/abl_replanning.cc.o"
  "CMakeFiles/abl_replanning.dir/abl_replanning.cc.o.d"
  "abl_replanning"
  "abl_replanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
