# Empty compiler generated dependencies file for abl_replanning.
# This may be replaced when dependencies are built.
