file(REMOVE_RECURSE
  "CMakeFiles/fig01_join_cost_curves.dir/fig01_join_cost_curves.cc.o"
  "CMakeFiles/fig01_join_cost_curves.dir/fig01_join_cost_curves.cc.o.d"
  "fig01_join_cost_curves"
  "fig01_join_cost_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_join_cost_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
