# Empty dependencies file for fig01_join_cost_curves.
# This may be replaced when dependencies are built.
