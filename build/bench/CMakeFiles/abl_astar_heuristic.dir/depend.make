# Empty dependencies file for abl_astar_heuristic.
# This may be replaced when dependencies are built.
