file(REMOVE_RECURSE
  "CMakeFiles/abl_astar_heuristic.dir/abl_astar_heuristic.cc.o"
  "CMakeFiles/abl_astar_heuristic.dir/abl_astar_heuristic.cc.o.d"
  "abl_astar_heuristic"
  "abl_astar_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_astar_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
