file(REMOVE_RECURSE
  "CMakeFiles/fig06_vary_refresh.dir/fig06_vary_refresh.cc.o"
  "CMakeFiles/fig06_vary_refresh.dir/fig06_vary_refresh.cc.o.d"
  "fig06_vary_refresh"
  "fig06_vary_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vary_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
