# Empty dependencies file for fig06_vary_refresh.
# This may be replaced when dependencies are built.
