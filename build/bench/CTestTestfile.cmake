# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig01 "/root/repo/build/bench/fig01_join_cost_curves" "--sf=0.002")
set_tests_properties(bench_smoke_fig01 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig04 "/root/repo/build/bench/fig04_tpcr_cost_curves" "--sf=0.002")
set_tests_properties(bench_smoke_fig04 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig05 "/root/repo/build/bench/fig05_sim_validation" "--sf=0.002" "--t=60")
set_tests_properties(bench_smoke_fig05 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig06 "/root/repo/build/bench/fig06_vary_refresh" "--sf=0.002")
set_tests_properties(bench_smoke_fig06 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig07 "/root/repo/build/bench/fig07_nonuniform" "--sf=0.002" "--t=200")
set_tests_properties(bench_smoke_fig07 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tightness "/root/repo/build/bench/abl_tightness")
set_tests_properties(bench_smoke_tightness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_cost_shapes "/root/repo/build/bench/abl_cost_shapes")
set_tests_properties(bench_smoke_cost_shapes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_engine_planner "/root/repo/build/bench/abl_engine_planner" "--sf=0.002")
set_tests_properties(bench_smoke_engine_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
